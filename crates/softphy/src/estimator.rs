//! The BER estimator: the paper's two-level lookup plus the per-packet
//! mean (§4.2).

use std::fmt;

use wilis_fec::CodeRate;
use wilis_phy::{Modulation, PhyRate};

use crate::scaling::ScalingFactors;
use crate::table::{BerTable, LogLinearFit};

/// Which soft decoder produced the hints — the first level of the paper's
/// two-level lookup (the second being the hint itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderKind {
    /// Two-traceback-unit SOVA.
    Sova,
    /// Sliding-window BCJR.
    Bcjr,
}

impl DecoderKind {
    /// The plug-n-play registry name of this decoder (`"sova"`, `"bcjr"`)
    /// — the single source of truth for the scenario engine and the
    /// figure drivers.
    pub fn registry_name(self) -> &'static str {
        match self {
            DecoderKind::Sova => "sova",
            DecoderKind::Bcjr => "bcjr",
        }
    }

    /// The inverse of [`DecoderKind::registry_name`]; `None` for names
    /// without calibrated hints (e.g. `"viterbi"` or user registrations).
    pub fn from_registry_name(name: &str) -> Option<Self> {
        match name {
            "sova" => Some(DecoderKind::Sova),
            "bcjr" => Some(DecoderKind::Bcjr),
            _ => None,
        }
    }

    /// The decoder scale factor `S_dec` (equation 5). These constants were
    /// calibrated once against this repository's decoders by the Figure 5
    /// procedure (`calibrate` module) at each modulation's mid SNR, exactly
    /// how the paper derives its lookup tables from measured curves.
    pub fn s_dec(self) -> f64 {
        match self {
            // SOVA margins come from single ACS differences of
            // correlation metrics; BCJR max-log sums both directions and
            // reports a slightly larger numeric scale on the same inputs.
            // Values calibrated against this repository's decoders with the
            // Figure 5 procedure (see `calibrate`); re-run it after any
            // metric-path change.
            DecoderKind::Sova => 0.45,
            DecoderKind::Bcjr => 0.49,
        }
    }

    /// Short identifier matching [`wilis_fec::SoftDecoder::id`].
    pub fn id(self) -> &'static str {
        match self {
            DecoderKind::Sova => "sova",
            DecoderKind::Bcjr => "bcjr",
        }
    }
}

impl fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DecoderKind::Sova => "SOVA",
            DecoderKind::Bcjr => "BCJR",
        })
    }
}

/// Per-bit and per-packet BER estimation from SoftPHY hints.
///
/// Hardware-wise this is a small ROM (64 entries per modulation/decoder
/// pair) plus an accumulator for the packet mean — the "around 10% increase
/// in the size of a transceiver" the paper concludes is acceptable.
///
/// # Example
///
/// ```
/// use wilis_softphy::{BerEstimator, DecoderKind};
/// use wilis_phy::Modulation;
///
/// let est = BerEstimator::analytic(Modulation::Qpsk, DecoderKind::Sova);
/// let pber = est.per_packet(&[50, 60, 40, 55]);
/// assert!(pber > 0.0 && pber < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BerEstimator {
    modulation: Modulation,
    decoder: DecoderKind,
    table: BerTable,
}

impl BerEstimator {
    /// An estimator whose table comes from equations 4 + 5 with the
    /// constant mid-range SNR (the paper's deployed configuration),
    /// assuming the unpunctured rate-1/2 code.
    pub fn analytic(modulation: Modulation, decoder: DecoderKind) -> Self {
        Self::analytic_with_code_rate(modulation, decoder, CodeRate::Half)
    }

    /// An estimator for a full PHY rate: modulation plus the puncturing
    /// correction for its code rate (see
    /// [`ScalingFactors::code_rate_correction`]).
    pub fn analytic_for_rate(rate: PhyRate, decoder: DecoderKind) -> Self {
        Self::analytic_with_code_rate(rate.modulation(), decoder, rate.code_rate())
    }

    /// An estimator with an explicit code rate.
    pub fn analytic_with_code_rate(
        modulation: Modulation,
        decoder: DecoderKind,
        code_rate: CodeRate,
    ) -> Self {
        let s_dec = decoder.s_dec() * ScalingFactors::code_rate_correction(code_rate);
        let factors = ScalingFactors::with_constant_snr(modulation, s_dec);
        Self {
            modulation,
            decoder,
            table: BerTable::from_scaling(&factors),
        }
    }

    /// An estimator whose table comes from a measured log-linear fit (the
    /// Figure 5 calibration path).
    pub fn from_fit(modulation: Modulation, decoder: DecoderKind, fit: &LogLinearFit) -> Self {
        Self {
            modulation,
            decoder,
            table: BerTable::from_fit(fit),
        }
    }

    /// The modulation this estimator was built for.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// The decoder this estimator was built for.
    pub fn decoder(&self) -> DecoderKind {
        self.decoder
    }

    /// The underlying lookup table.
    pub fn table(&self) -> &BerTable {
        &self.table
    }

    /// Per-bit BER estimate for one hint.
    pub fn per_bit(&self, hint: u16) -> f64 {
        self.table.lookup(hint.min(wilis_fec::MAX_HINT))
    }

    /// Per-packet BER: "the arithmetic mean of the per-bit BER estimates
    /// in a packet" (§4.4.2).
    ///
    /// # Panics
    ///
    /// Panics if `hints` is empty — an empty packet has no BER.
    pub fn per_packet(&self, hints: &[u16]) -> f64 {
        assert!(!hints.is_empty(), "per-packet BER of an empty packet");
        hints.iter().map(|&h| self.per_bit(h)).sum::<f64>() / hints.len() as f64
    }

    /// Estimated probability the whole packet is error-free, assuming
    /// independent bits: `Π (1 − BER_i)`. Used by rate selection as an
    /// alternative statistic to thresholding the mean.
    pub fn packet_success_probability(&self, hints: &[u16]) -> f64 {
        hints.iter().map(|&h| 1.0 - self.per_bit(h)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bit_monotone() {
        let est = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Bcjr);
        for h in 0..63u16 {
            assert!(est.per_bit(h) >= est.per_bit(h + 1));
        }
    }

    #[test]
    fn per_packet_is_mean() {
        let est = BerEstimator::analytic(Modulation::Qpsk, DecoderKind::Sova);
        let hints = [10u16, 20, 30];
        let expect = (est.per_bit(10) + est.per_bit(20) + est.per_bit(30)) / 3.0;
        assert!((est.per_packet(&hints) - expect).abs() < 1e-15);
    }

    #[test]
    fn success_probability_bounds() {
        let est = BerEstimator::analytic(Modulation::Qam64, DecoderKind::Bcjr);
        let good = est.packet_success_probability(&[63; 100]);
        let bad = est.packet_success_probability(&[0; 100]);
        assert!(good > 0.99);
        assert!(bad < 1e-20);
    }

    #[test]
    fn oversized_hint_clamps() {
        let est = BerEstimator::analytic(Modulation::Bpsk, DecoderKind::Sova);
        assert_eq!(est.per_bit(999), est.per_bit(63));
    }

    #[test]
    #[should_panic(expected = "empty packet")]
    fn empty_packet_panics() {
        let est = BerEstimator::analytic(Modulation::Bpsk, DecoderKind::Sova);
        let _ = est.per_packet(&[]);
    }

    #[test]
    fn decoder_scales_differ() {
        // §4.2: S_dec differs between the decoders; the tables must too.
        let sova = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Sova);
        let bcjr = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Bcjr);
        assert_ne!(sova.per_bit(30), bcjr.per_bit(30));
    }
}
