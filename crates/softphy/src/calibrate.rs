//! Monte-Carlo calibration: the procedure behind the paper's Figure 5.
//!
//! "To determine the relationship between these LLR values and the BERs,
//! we simulated the transmission of trillions (10¹²) of bits on the FPGA"
//! (§4.4.1). This module runs the same experiment on the software pipeline:
//! transmit packets through an AWGN channel, decode with SOVA or BCJR, bin
//! every payload bit by its hint value, and record whether it was actually
//! in error. The per-bin BER against hint value is the Figure 5 curve; a
//! log-linear fit of it yields the lookup table for [`crate::BerEstimator`].
//!
//! We cannot afford 10¹² bits in software — the bit budget is configurable
//! and the reproduced curves simply stop at a higher BER floor (about
//! 10⁻⁵–10⁻⁶ at the default budgets; raise the budget to dig deeper).

use wilis_channel::{AwgnChannel, Channel, SnrDb};
use wilis_fec::{BcjrDecoder, ConvCode, SovaDecoder, MAX_HINT};
use wilis_fxp::rng::SmallRng;
use wilis_phy::{Demapper, PhyRate, Receiver, SnrScaling, Transmitter};

use crate::estimator::DecoderKind;
use crate::table::LogLinearFit;
use wilis_fxp::Cplx;
use wilis_phy::{PhyScratch, RxResult};

/// Configuration of one calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// PHY rate (fixes modulation and code rate).
    pub rate: PhyRate,
    /// Which soft decoder to characterize.
    pub decoder: DecoderKind,
    /// Channel SNR.
    pub snr: SnrDb,
    /// Total payload bits to simulate (rounded up to whole packets).
    pub min_bits: u64,
    /// Payload size per packet in bits (the paper's Figure 6 uses 1704).
    pub packet_bits: usize,
    /// Demapper soft-output width in bits.
    pub demapper_bits: u32,
    /// RNG seed (payloads and noise derive from it deterministically).
    pub seed: u64,
}

impl CalibrationConfig {
    /// A sensible default: 1704-bit packets, with the hint-path demapper
    /// width for the rate's modulation (see
    /// `ScalingFactors::hint_demapper_bits`).
    pub fn new(rate: PhyRate, decoder: DecoderKind, snr: SnrDb, min_bits: u64) -> Self {
        Self {
            rate,
            decoder,
            snr,
            min_bits,
            packet_bits: 1704,
            demapper_bits: crate::ScalingFactors::hint_demapper_bits(rate.modulation()),
            seed: 0x5EED,
        }
    }
}

/// One hint bin: how many payload bits carried this hint, and how many of
/// them were wrong.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintBin {
    /// Bits observed with this hint.
    pub bits: u64,
    /// Of those, bits decoded incorrectly.
    pub errors: u64,
}

impl HintBin {
    /// Observed BER of this bin, `None` if empty.
    pub fn ber(&self) -> Option<f64> {
        (self.bits > 0).then(|| self.errors as f64 / self.bits as f64)
    }
}

/// The result of a calibration run.
#[derive(Debug, Clone)]
pub struct HintCalibration {
    /// The configuration that produced this calibration.
    pub config: CalibrationConfig,
    /// Per-hint statistics, index = hint value (0..=63).
    pub bins: Vec<HintBin>,
    /// Packets simulated.
    pub packets: u64,
    /// Packets with at least one payload bit error.
    pub packet_errors: u64,
    /// Overall payload BER across the run.
    pub overall_ber: f64,
    /// Log-linear fit of BER vs hint (the Figure 5 line), when enough
    /// error mass exists to fit one.
    pub fit: Option<LogLinearFit>,
}

impl HintCalibration {
    /// Builds a calibration from accumulated hint bins, applying the
    /// canonical Figure 5 fit rule (bins with ≥ 16 observations and ≥ 1
    /// error, weighted by error count). Shared by [`calibrate_hints`] and
    /// the scenario-engine Figure 5 driver so the two paths can never
    /// diverge.
    pub fn from_bins(
        config: CalibrationConfig,
        bins: Vec<HintBin>,
        packets: u64,
        packet_errors: u64,
        overall_ber: f64,
    ) -> Self {
        let samples: Vec<(u16, f64, f64)> = bins
            .iter()
            .enumerate()
            .filter(|(_, b)| b.bits >= 16 && b.errors >= 1)
            .map(|(h, b)| (h as u16, b.errors as f64 / b.bits as f64, b.errors as f64))
            .collect();
        let fit = LogLinearFit::fit(&samples);
        Self {
            config,
            bins,
            packets,
            packet_errors,
            overall_ber,
            fit,
        }
    }

    /// Iterates `(hint, ber)` over non-empty bins with at least one error
    /// — the plotted points of Figure 5.
    pub fn curve(&self) -> impl Iterator<Item = (u16, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter_map(|(h, b)| b.ber().filter(|&ber| ber > 0.0).map(|ber| (h as u16, ber)))
    }
}

/// Builds the receiver for a decoder kind (shared with the experiment
/// drivers in the `wilis` facade).
pub fn receiver_for(rate: PhyRate, decoder: DecoderKind, demapper_bits: u32) -> Receiver {
    let code = ConvCode::ieee80211();
    let demapper = Demapper::new(rate.modulation(), demapper_bits, SnrScaling::Off);
    match decoder {
        DecoderKind::Sova => {
            Receiver::new(rate, demapper, Box::new(SovaDecoder::new(&code, 64, 64)))
        }
        DecoderKind::Bcjr => Receiver::new(rate, demapper, Box::new(BcjrDecoder::new(&code, 64))),
    }
}

/// Runs the calibration experiment.
///
/// # Panics
///
/// Panics if `packet_bits` is zero.
pub fn calibrate_hints(cfg: &CalibrationConfig) -> HintCalibration {
    assert!(cfg.packet_bits > 0, "packets must carry payload");
    let tx = Transmitter::new(cfg.rate);
    let mut rx = receiver_for(cfg.rate, cfg.decoder, cfg.demapper_bits);
    let mut channel = AwgnChannel::new(cfg.snr, cfg.seed ^ 0xC0FFEE);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut bins = vec![HintBin::default(); usize::from(MAX_HINT) + 1];
    let mut packets = 0u64;
    let mut packet_errors = 0u64;
    let mut total_bits = 0u64;
    let mut total_errors = 0u64;

    // Steady-state working memory, reused across the whole run.
    let mut scratch = PhyScratch::new();
    let mut samples: Vec<Cplx> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut got = RxResult::default();

    while total_bits < cfg.min_bits {
        payload.clear();
        payload.extend((0..cfg.packet_bits).map(|_| rng.gen_bit()));
        let scramble_seed = (packets % 127 + 1) as u8;
        tx.tx_into(&payload, scramble_seed, &mut scratch, &mut samples);
        channel.apply(&mut samples);
        rx.rx_from(
            &samples,
            payload.len(),
            scramble_seed,
            &mut scratch,
            &mut got,
        );

        let mut errs_this_packet = 0u64;
        for ((sent_bit, got_bit), &hint) in payload.iter().zip(&got.payload).zip(&got.hints) {
            let bin = &mut bins[usize::from(hint)];
            bin.bits += 1;
            if sent_bit != got_bit {
                bin.errors += 1;
                errs_this_packet += 1;
            }
        }
        packets += 1;
        total_bits += cfg.packet_bits as u64;
        total_errors += errs_this_packet;
        if errs_this_packet > 0 {
            packet_errors += 1;
        }
    }

    HintCalibration::from_bins(
        *cfg,
        bins,
        packets,
        packet_errors,
        total_errors as f64 / total_bits as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate: PhyRate, decoder: DecoderKind, snr_db: f64, bits: u64) -> HintCalibration {
        calibrate_hints(&CalibrationConfig {
            packet_bits: 600,
            ..CalibrationConfig::new(rate, decoder, SnrDb::new(snr_db), bits)
        })
    }

    #[test]
    fn clean_channel_pegs_high_hints() {
        let cal = quick(PhyRate::QpskHalf, DecoderKind::Sova, 30.0, 3_000);
        assert_eq!(cal.overall_ber, 0.0);
        // Essentially all mass in the top hint bins.
        let top: u64 = cal.bins[32..].iter().map(|b| b.bits).sum();
        let all: u64 = cal.bins.iter().map(|b| b.bits).sum();
        assert!(top * 10 >= all * 9, "top-bin mass {top}/{all}");
        assert!(cal.fit.is_none(), "no errors, nothing to fit");
    }

    #[test]
    fn noisy_channel_produces_falling_curve() {
        let cal = quick(PhyRate::QpskHalf, DecoderKind::Bcjr, 1.0, 30_000);
        assert!(cal.overall_ber > 5e-4, "ber {}", cal.overall_ber);
        let fit = cal.fit.expect("enough errors to fit");
        assert!(
            fit.slope < 0.0,
            "BER must fall with hint, slope {}",
            fit.slope
        );
        // Low-hint bins should show materially higher BER than high-hint.
        let low: Vec<f64> = cal
            .curve()
            .filter(|&(h, _)| h <= 8)
            .map(|(_, b)| b)
            .collect();
        let high: Vec<f64> = cal
            .curve()
            .filter(|&(h, _)| h >= 24)
            .map(|(_, b)| b)
            .collect();
        if let (Some(&l), Some(&h)) = (low.first(), high.last()) {
            assert!(l > h, "low-hint {l} vs high-hint {h}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(PhyRate::BpskHalf, DecoderKind::Sova, 4.0, 5_000);
        let b = quick(PhyRate::BpskHalf, DecoderKind::Sova, 4.0, 5_000);
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.overall_ber, b.overall_ber);
    }

    #[test]
    fn bin_accounting_conserves_bits() {
        let cal = quick(PhyRate::Qam16Half, DecoderKind::Bcjr, 8.0, 6_000);
        let binned: u64 = cal.bins.iter().map(|b| b.bits).sum();
        assert_eq!(binned, cal.packets * 600);
    }
}
