//! The three scaling factors of the paper's equation 5.

use wilis_channel::SnrDb;
use wilis_fec::CodeRate;
use wilis_phy::Modulation;

/// The factors converting a hardware LLR hint into a true LLR:
/// `LLR_true = es_n0 × s_mod × s_dec × hint`.
///
/// * `es_n0` — linear SNR. The paper's estimator uses a pre-computed
///   constant per modulation (§4.2): the middle of the SNR range over
///   which that modulation's BER falls from 10⁻¹ to 10⁻⁷ is only a few dB
///   wide, so a midpoint costs little accuracy and saves a run-time SNR
///   estimator.
/// * `s_mod` — the modulation geometry factor (distances between
///   constellation points after K_mod normalization).
/// * `s_dec` — the decoder's input-interpretation scale, different for
///   SOVA and BCJR (§4.2: "the input values are interpreted using
///   different scales by the hardware BCJR and SOVA").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingFactors {
    /// Linear `Es/N0`.
    pub es_n0: f64,
    /// Modulation scale factor.
    pub s_mod: f64,
    /// Decoder scale factor.
    pub s_dec: f64,
}

impl ScalingFactors {
    /// Factors using the constant mid-range SNR for `modulation` (the
    /// paper's recommended configuration).
    pub fn with_constant_snr(modulation: Modulation, s_dec: f64) -> Self {
        Self {
            es_n0: Self::mid_snr(modulation).linear(),
            s_mod: Self::s_mod(modulation),
            s_dec,
        }
    }

    /// Factors using a known true SNR (the oracle the paper compares its
    /// constant against).
    pub fn with_true_snr(modulation: Modulation, snr: SnrDb, s_dec: f64) -> Self {
        Self {
            es_n0: snr.linear(),
            s_mod: Self::s_mod(modulation),
            s_dec,
        }
    }

    /// The pre-computed constant SNR for each modulation: the midpoint of
    /// the waterfall region where coded BER falls 10⁻¹ → 10⁻⁷, measured on
    /// this repository's pipeline (the paper takes the same midpoints from
    /// its reference \[8\], Doufexi et al.; ours sit ~1–3 dB lower because
    /// the modeled receiver has ideal synchronization and no implementation
    /// losses).
    pub fn mid_snr(modulation: Modulation) -> SnrDb {
        match modulation {
            Modulation::Bpsk => SnrDb::new(-0.5),
            Modulation::Qpsk => SnrDb::new(2.5),
            Modulation::Qam16 => SnrDb::new(7.25),
            Modulation::Qam64 => SnrDb::new(14.5),
        }
    }

    /// The modulation scale factor: the true-LLR change per *hint step*.
    ///
    /// Two pieces multiply here: the AWGN LLR slope per constellation grid
    /// unit (`4 K_mod²`, from equation 3), and the hardware demapper's
    /// quantizer gain — the hint-path demapper maps its analog range
    /// (1.5 × the largest grid coordinate) onto the signed range of
    /// [`Self::hint_demapper_bits`] bits, so one hint step corresponds to
    /// `analog_range / full_scale` grid units. Folding the quantizer in
    /// keeps `S_dec` close to modulation-independent (measured 0.35–0.55
    /// across all four modulations), which is what lets the paper treat
    /// it as a per-decoder constant.
    pub fn s_mod(modulation: Modulation) -> f64 {
        let bits = Self::hint_demapper_bits(modulation);
        let full_scale = f64::from((1u32 << (bits - 1)) - 1);
        let analog_range = modulation.grid_max() * 1.5;
        4.0 * modulation.kmod() * modulation.kmod() * analog_range / full_scale
    }

    /// The demapper soft-output width of the SoftPHY hint path, per
    /// modulation: sized so the 6-bit hint range spans BER 10^-1..10^-7
    /// (the paper's stated requirement, and the span of its Figure 5
    /// axes). BPSK/QPSK saturate a 5-bit quantizer too early (their
    /// per-coded-bit confidences are large), so they use 4 bits; the QAM
    /// constellations keep 5. All widths sit inside the paper's 3-8 bit
    /// hardware envelope (section 4.1).
    pub fn hint_demapper_bits(modulation: Modulation) -> u32 {
        match modulation {
            Modulation::Bpsk | Modulation::Qpsk => 4,
            Modulation::Qam16 | Modulation::Qam64 => 5,
        }
    }

    /// The puncturing correction to the hint scale. Punctured rates erase
    /// mother-code bits, which shortens minimum error events (free
    /// distance 10 → 6 → 5) and caps decoder margins at proportionally
    /// smaller hint values; the same true LLR therefore corresponds to a
    /// *smaller* hint, so the per-hint scale grows. The constants follow
    /// the free-distance ratio and were validated with the Figure 5
    /// calibration procedure at each punctured rate's waterfall.
    pub fn code_rate_correction(code_rate: CodeRate) -> f64 {
        match code_rate {
            CodeRate::Half => 1.0,
            CodeRate::TwoThirds => 10.0 / 6.0,
            CodeRate::ThreeQuarters => 10.0 / 5.0,
        }
    }

    /// The combined multiplier applied to a hardware hint.
    pub fn combined(&self) -> f64 {
        self.es_n0 * self.s_mod * self.s_dec
    }

    /// The true LLR implied by a hardware hint (equation 5).
    pub fn true_llr(&self, hint: u16) -> f64 {
        self.combined() * f64::from(hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_snr_ordering_follows_constellation_density() {
        let order = [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ];
        for w in order.windows(2) {
            assert!(
                ScalingFactors::mid_snr(w[0]).db() < ScalingFactors::mid_snr(w[1]).db(),
                "denser constellations need more SNR"
            );
        }
    }

    #[test]
    fn s_mod_matches_kmod_and_quantizer() {
        // 4 kmod^2 * (analog_range / full_scale); 4-bit for BPSK/QPSK,
        // 5-bit for the QAM constellations.
        assert!((ScalingFactors::s_mod(Modulation::Bpsk) - 4.0 * 1.5 / 7.0).abs() < 1e-12);
        assert!((ScalingFactors::s_mod(Modulation::Qpsk) - 2.0 * 1.5 / 7.0).abs() < 1e-12);
        assert!((ScalingFactors::s_mod(Modulation::Qam16) - 0.4 * 4.5 / 15.0).abs() < 1e-12);
        assert!(
            (ScalingFactors::s_mod(Modulation::Qam64) - (4.0 / 42.0) * 10.5 / 15.0).abs() < 1e-12
        );
    }

    #[test]
    fn true_llr_is_linear_in_hint() {
        let f = ScalingFactors::with_constant_snr(Modulation::Qam16, 0.5);
        assert_eq!(f.true_llr(0), 0.0);
        assert!((f.true_llr(40) - 2.0 * f.true_llr(20)).abs() < 1e-12);
    }

    #[test]
    fn constant_vs_true_snr_differ_off_midpoint() {
        let c = ScalingFactors::with_constant_snr(Modulation::Qam16, 1.0);
        let t = ScalingFactors::with_true_snr(Modulation::Qam16, SnrDb::new(10.0), 1.0);
        assert!(t.combined() > c.combined(), "10 dB is above the midpoint");
    }
}
