//! SoftPHY: turning decoder confidence hints into bit-error-rate estimates.
//!
//! The SoftPHY abstraction exports a per-bit confidence (the decoder's LLR)
//! up the network stack, where protocols like PPR and SoftRate consume it.
//! The paper's case study (§4.2) shows the hints produced by *hardware*
//! SOVA and BCJR are only proportional to the true LLR:
//!
//! ```text
//! LLR_true = (Es/N0) × S_modulation × S_decoder × LLR_hw     (eq. 5)
//! BER_bit  = 1 / (1 + e^LLR_true)                            (eq. 4)
//! ```
//!
//! because the hardware demapper drops the SNR and modulation factors and
//! each decoder interprets its inputs on its own scale. Rather than build a
//! run-time SNR estimator, the paper picks a *constant* mid-range SNR per
//! modulation and bakes everything into a two-level lookup table:
//! `(modulation, decoder) → (hint → BER)`. This crate implements that
//! estimator, plus the Monte-Carlo calibration procedure that produced the
//! paper's Figure 5 curves.
//!
//! # Example
//!
//! ```
//! use wilis_softphy::{BerEstimator, DecoderKind};
//! use wilis_phy::Modulation;
//!
//! let est = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Bcjr);
//! // Hint 0 carries no confidence; high hints mean very reliable bits.
//! assert!(est.per_bit(0) > 0.2);
//! assert!(est.per_bit(60) < 1e-5);
//! let pber = est.per_packet(&[60; 1000]);
//! assert!(pber < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
mod estimator;
mod scaling;
mod table;

pub use calibrate::{calibrate_hints, CalibrationConfig, HintBin, HintCalibration};
pub use estimator::{BerEstimator, DecoderKind};
pub use scaling::ScalingFactors;
pub use table::{BerTable, LogLinearFit};
