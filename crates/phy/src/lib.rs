//! 802.11a/g-like OFDM baseband — the pipeline of the paper's Figure 1.
//!
//! The transmit chain is `scramble → convolutional encode → puncture →
//! interleave → map → OFDM modulate`; the receive chain is its mirror with
//! a *soft* demapper feeding the soft-decision decoder, which is where
//! SoftPHY hints originate. Synchronization and channel estimation are
//! deliberately absent, exactly as in the paper (§1: "with only
//! synchronization and channel estimation absent"); fading experiments use
//! genie equalization instead (see `wilis-channel`).
//!
//! # Example: one packet through a clean channel
//!
//! ```
//! use wilis_phy::{PhyRate, Receiver, Transmitter};
//!
//! let rate = PhyRate::Qam16Half;
//! let payload: Vec<u8> = (0..512).map(|i| (i % 2) as u8).collect();
//! let tx = Transmitter::new(rate).transmit(&payload, 1);
//! let rx = Receiver::viterbi(rate).receive(&tx.samples, tx.payload_bits, 1);
//! assert_eq!(rx.payload, payload);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demapper;
mod fft;
pub mod fft_fixed;
mod interleave;
mod mapper;
mod ofdm;
mod packet;
mod pipeline;
mod plan;
mod rate;
mod reference;
mod scrambler;

pub use demapper::{Demapper, SnrScaling};
pub use fft::{fft, ifft};
pub use interleave::{Deinterleaver, Interleaver};
pub use mapper::{Mapper, Modulation};
pub use ofdm::{OfdmDemodulator, OfdmModulator, CP_LEN, DATA_CARRIERS, FFT_LEN, SYMBOL_LEN};
pub use packet::{PacketBuilder, PacketFields, SERVICE_BITS, TAIL_BITS};
pub use pipeline::{PhyScratch, Receiver, RxResult, Transmitter, TxResult};
pub use plan::{fft_with, ifft_with, FftPlan, OfdmPlan};
pub use rate::PhyRate;
pub use scrambler::Scrambler;

#[cfg(test)]
mod equiv_tests;
#[cfg(test)]
mod prop_tests;
