//! Gray-coded constellation mapping (802.11-2007 §17.3.5.7).
//!
//! The hot-path [`Mapper::map_into`] runs against a per-modulation
//! Gray-map lookup table (bit group → constellation point, built once per
//! process), bit-identical to the interpreted per-point reference body
//! frozen in [`crate::reference`] as `map_into_reference`.

use std::fmt;
use std::sync::OnceLock;

use wilis_fxp::Cplx;

/// A subcarrier modulation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Modulation {
    /// 1 bit per subcarrier.
    Bpsk,
    /// 2 bits per subcarrier.
    Qpsk,
    /// 4 bits per subcarrier.
    Qam16,
    /// 6 bits per subcarrier.
    Qam64,
}

impl Modulation {
    /// Coded bits carried per subcarrier (N_BPSC).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// The normalization factor K_mod that gives unit average symbol
    /// energy: 1, 1/√2, 1/√10, 1/√42.
    pub fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Largest |coordinate| on the unnormalized (±1, ±3, …) grid.
    pub fn grid_max(self) -> f64 {
        match self {
            Modulation::Bpsk | Modulation::Qpsk => 1.0,
            Modulation::Qam16 => 3.0,
            Modulation::Qam64 => 7.0,
        }
    }

    /// Bits per I/Q axis (0 for BPSK's imaginary axis).
    pub(crate) fn bits_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 1, // all on I
            Modulation::Qpsk => 1,
            Modulation::Qam16 => 2,
            Modulation::Qam64 => 3,
        }
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "QAM-16",
            Modulation::Qam64 => "QAM-64",
        };
        f.write_str(s)
    }
}

/// Gray map of one axis: `bits` (MSB first) to an odd-integer coordinate.
///
/// Table (802.11a): 1 bit: 0→−1, 1→+1; 2 bits: 00→−3, 01→−1, 11→+1,
/// 10→+3; 3 bits: 000→−7, 001→−5, 011→−3, 010→−1, 110→+1, 111→+3,
/// 101→+5, 100→+7.
pub(crate) fn gray_axis(bits: &[u8]) -> f64 {
    match bits {
        [b] => {
            if *b == 1 {
                1.0
            } else {
                -1.0
            }
        }
        [b0, b1] => {
            let mag = if *b1 == 1 { 1.0 } else { 3.0 };
            if *b0 == 1 {
                mag
            } else {
                -mag
            }
        }
        [b0, b1, b2] => {
            let mag = match (b1, b2) {
                (1, 0) => 1.0,
                (1, 1) => 3.0,
                (0, 1) => 5.0,
                (0, 0) => 7.0,
                _ => unreachable!("bits are 0/1"),
            };
            if *b0 == 1 {
                mag
            } else {
                -mag
            }
        }
        _ => unreachable!("1..=3 bits per axis"),
    }
}

/// The per-modulation Gray-map lookup table: entry `v` is the
/// constellation point for the `bits_per_symbol`-bit group whose MSB-first
/// value is `v`. Built once per process by running the frozen per-point
/// mapping over every bit pattern, so table entries are the reference
/// values bit for bit; shared by every `Mapper` (and sweep worker) for
/// that modulation.
pub(crate) fn map_table(modulation: Modulation) -> &'static [Cplx] {
    static TABLES: [OnceLock<Vec<Cplx>>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let slot = match modulation {
        Modulation::Bpsk => 0,
        Modulation::Qpsk => 1,
        Modulation::Qam16 => 2,
        Modulation::Qam64 => 3,
    };
    TABLES[slot].get_or_init(|| {
        let bps = modulation.bits_per_symbol();
        let k = modulation.kmod();
        let per_axis = modulation.bits_per_axis();
        (0..1usize << bps)
            .map(|v| {
                // lint: allow(no-alloc) — cold: the constellation table is built once per modulation under OnceLock
                let bits: Vec<u8> = (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect();
                if modulation == Modulation::Bpsk {
                    Cplx::new(gray_axis(&bits[..1]) * k, 0.0)
                } else {
                    let i = gray_axis(&bits[..per_axis]) * k;
                    let q = gray_axis(&bits[per_axis..]) * k;
                    Cplx::new(i, q)
                }
            })
            .collect() // lint: allow(no-alloc) — cold: the constellation table is built once per modulation under OnceLock
    })
}

/// Maps interleaved coded bits onto constellation points.
///
/// # Example
///
/// ```
/// use wilis_phy::{Mapper, Modulation};
///
/// let m = Mapper::new(Modulation::Qpsk);
/// let syms = m.map(&[1, 0, 0, 1]);
/// assert_eq!(syms.len(), 2);
/// // First symbol: I from bit 1 (+), Q from bit 0 (−).
/// assert!(syms[0].re > 0.0 && syms[0].im < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapper {
    modulation: Modulation,
}

impl Mapper {
    /// A mapper for `modulation`.
    pub fn new(modulation: Modulation) -> Self {
        Self { modulation }
    }

    /// The modulation in use.
    pub fn modulation(self) -> Modulation {
        self.modulation
    }

    /// Maps a bit slice to symbols, `bits_per_symbol` bits each, I-axis
    /// bits first (MSB first per axis), then Q-axis bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `bits_per_symbol`.
    pub fn map(&self, bits: &[u8]) -> Vec<Cplx> {
        let mut out = Vec::new();
        self.map_into(bits, &mut out);
        out
    }

    /// Maps a bit slice to symbols into `out`, reusing its capacity (the
    /// allocation-free hot-path form). Table-driven; bit-identical to the
    /// frozen [`Mapper::map_into_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `bits_per_symbol`.
    pub fn map_into(&self, bits: &[u8], out: &mut Vec<Cplx>) {
        out.clear();
        self.map_append(bits, out);
    }

    /// [`Mapper::map_into`] without the clear — packets map symbol by
    /// symbol into one constellation stream, so the hot path accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `bits_per_symbol`.
    pub fn map_append(&self, bits: &[u8], out: &mut Vec<Cplx>) {
        let bps = self.modulation.bits_per_symbol();
        assert!(
            bits.len() % bps == 0,
            "bit count {} not a multiple of {bps}",
            bits.len()
        );
        debug_assert!(bits.iter().all(|&b| b <= 1), "inputs are bit slices");
        let table = map_table(self.modulation);
        // `extend` over exact-size iterators reserves once and skips the
        // per-push capacity checks. The bit-identity contract with the
        // reference body covers genuine 0/1 bit slices (debug-asserted
        // above); `b == 1` mirrors the reference's single-bit reading.
        if bps == 1 {
            out.extend(bits.iter().map(|&b| table[usize::from(b == 1)]));
        } else {
            out.extend(bits.chunks_exact(bps).map(|chunk| {
                let mut idx = 0usize;
                for &b in chunk {
                    idx = (idx << 1) | usize::from(b == 1);
                }
                table[idx]
            }));
        }
    }

    /// Maps `lanes` equal-length bit streams in lockstep, appending one
    /// lane-major constellation stream (symbol `i` of lane `l` at
    /// `out[len_before + i * lanes + l]`) — the batch-path counterpart of
    /// [`Mapper::map_append`]. Each lane reads the same shared Gray table,
    /// so every lane's points are the scalar mapping bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `lane_bits` is empty, the lanes differ in length, or the
    /// common length is not a multiple of `bits_per_symbol`.
    pub fn map_batch_append(&self, lane_bits: &[&[u8]], out: &mut Vec<Cplx>) {
        let lanes = lane_bits.len();
        assert!(lanes > 0, "at least one lane");
        let len = lane_bits[0].len();
        assert!(
            lane_bits.iter().all(|b| b.len() == len),
            "all lanes must hold the same number of bits"
        );
        let bps = self.modulation.bits_per_symbol();
        assert!(len % bps == 0, "bit count {len} not a multiple of {bps}",);
        debug_assert!(
            lane_bits.iter().all(|l| l.iter().all(|&b| b <= 1)),
            "inputs are bit slices"
        );
        let table = map_table(self.modulation);
        out.reserve((len / bps) * lanes);
        for i in 0..len / bps {
            for lane in lane_bits {
                let mut idx = 0usize;
                for &b in &lane[i * bps..(i + 1) * bps] {
                    idx = (idx << 1) | usize::from(b == 1);
                }
                out.push(table[idx]);
            }
        }
    }

    /// Average symbol energy of the full constellation — exactly 1.0 after
    /// K_mod normalization (used by tests and the SNR bookkeeping).
    pub fn average_energy(&self) -> f64 {
        let bps = self.modulation.bits_per_symbol();
        let count = 1usize << bps;
        (0..count)
            .map(|v| {
                let bits: Vec<u8> = (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect();
                self.map(&bits)[0].norm_sq()
            })
            .sum::<f64>()
            / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_constellations_have_unit_energy() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let e = Mapper::new(m).average_energy();
            assert!((e - 1.0).abs() < 1e-12, "{m}: energy {e}");
        }
    }

    #[test]
    fn gray_neighbors_differ_by_one_bit() {
        // Walk the 8 coordinates of the 64-QAM axis in spatial order; the
        // bit labels of adjacent points must differ in exactly one bit.
        let labels: [(u8, u8, u8); 8] = [
            (0, 0, 0),
            (0, 0, 1),
            (0, 1, 1),
            (0, 1, 0),
            (1, 1, 0),
            (1, 1, 1),
            (1, 0, 1),
            (1, 0, 0),
        ];
        let coords: Vec<f64> = labels
            .iter()
            .map(|&(a, b, c)| gray_axis(&[a, b, c]))
            .collect();
        // Spatially ordered -7..=7:
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(c, -7.0 + 2.0 * i as f64);
        }
        for w in labels.windows(2) {
            let d = (w[0].0 ^ w[1].0) as u32 + (w[0].1 ^ w[1].1) as u32 + (w[0].2 ^ w[1].2) as u32;
            assert_eq!(d, 1, "not Gray: {:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn bpsk_is_real_axis_only() {
        let m = Mapper::new(Modulation::Bpsk);
        let syms = m.map(&[0, 1]);
        assert_eq!(syms[0], Cplx::new(-1.0, 0.0));
        assert_eq!(syms[1], Cplx::new(1.0, 0.0));
    }

    #[test]
    fn qam16_known_points() {
        let m = Mapper::new(Modulation::Qam16);
        let k = Modulation::Qam16.kmod();
        // bits (I: 1,0 Q: 0,1) -> I=+3k, Q=-1k
        let s = m.map(&[1, 0, 0, 1])[0];
        assert!((s.re - 3.0 * k).abs() < 1e-12);
        assert!((s.im + k).abs() < 1e-12);
    }

    #[test]
    fn distinct_inputs_distinct_points() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let mapper = Mapper::new(m);
            let bps = m.bits_per_symbol();
            let mut points = Vec::new();
            for v in 0..(1usize << bps) {
                let bits: Vec<u8> = (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect();
                points.push(mapper.map(&bits)[0]);
            }
            for i in 0..points.len() {
                for j in (i + 1)..points.len() {
                    assert!(
                        (points[i] - points[j]).norm() > 1e-9,
                        "{m}: duplicate constellation point"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_bits_panic() {
        let _ = Mapper::new(Modulation::Qam16).map(&[1, 0, 1]);
    }
}
