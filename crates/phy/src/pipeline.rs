//! End-to-end transmit and receive pipelines (the Figure 1 chains, in
//! functional form).

use wilis_fec::{
    BcjrDecoder, CompiledTrellis, ConvCode, ConvEncoder, DecodeOutput, Depuncturer, Llr, Puncturer,
    SoftDecoder, SovaDecoder, ViterbiDecoder,
};
use wilis_fxp::Cplx;

use crate::demapper::{Demapper, SnrScaling};
use crate::interleave::{Deinterleaver, Interleaver};
use crate::mapper::Mapper;
use crate::ofdm::{OfdmDemodulator, OfdmModulator, SYMBOL_LEN};
use crate::packet::{PacketBuilder, PacketFields, SERVICE_BITS, TAIL_BITS};
use crate::rate::PhyRate;
use crate::scrambler::Scrambler;

/// Rate-specific pipeline machinery cached inside a [`PhyScratch`]:
/// permutation tables and the encoder trellis are built once per rate, not
/// once per packet.
#[derive(Debug, Clone)]
struct RateMachinery {
    rate: PhyRate,
    encoder: ConvEncoder,
    interleaver: Interleaver,
    deinterleaver: Deinterleaver,
    mapper: Mapper,
}

impl RateMachinery {
    fn new(rate: PhyRate) -> Self {
        Self {
            rate,
            encoder: ConvEncoder::new(&ConvCode::ieee80211()),
            interleaver: Interleaver::new(rate),
            deinterleaver: Deinterleaver::new(rate),
            mapper: Mapper::new(rate.modulation()),
        }
    }
}

/// Reusable working memory for the TX and RX chains.
///
/// One `PhyScratch` per worker turns [`Transmitter::tx_into`] and
/// [`Receiver::rx_from`] into allocation-free operations in the steady
/// state: every intermediate buffer — coded bits, interleaved symbols,
/// constellation points, LLR streams, decoder output — is retained and
/// reused between packets, and the rate-specific machinery (permutation
/// tables, encoder trellis) is rebuilt only when the rate changes.
#[derive(Debug, Clone)]
pub struct PhyScratch {
    machinery: Option<RateMachinery>,
    ofdm_tx: OfdmModulator,
    ofdm_rx: OfdmDemodulator,
    data_bits: Vec<u8>,
    coded: Vec<u8>,
    punctured: Vec<u8>,
    interleaved: Vec<u8>,
    /// One symbol of constellation points (reference path).
    points: Vec<Cplx>,
    /// A whole packet of constellation points (planned TX streaming).
    packet_points: Vec<Cplx>,
    /// Recovered data carriers: a whole packet on the planned path, one
    /// symbol at a time on the reference path.
    carriers: Vec<Cplx>,
    /// Demapped LLRs: a whole packet on the planned path, one symbol at a
    /// time on the reference path.
    symbol_llrs: Vec<Llr>,
    punctured_llrs: Vec<Llr>,
    mother: Vec<Llr>,
    decoded: DecodeOutput,
    /// Per-lane decoder outputs of the batched RX path
    /// ([`Receiver::rx_batch_from`]); empty until the first batched call.
    decoded_lanes: Vec<DecodeOutput>,
}

impl PhyScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self {
            machinery: None,
            ofdm_tx: OfdmModulator::new(),
            ofdm_rx: OfdmDemodulator::new(),
            data_bits: Vec::new(),
            coded: Vec::new(),
            punctured: Vec::new(),
            interleaved: Vec::new(),
            points: Vec::new(),
            packet_points: Vec::new(),
            carriers: Vec::new(),
            symbol_llrs: Vec::new(),
            punctured_llrs: Vec::new(),
            mother: Vec::new(),
            decoded: DecodeOutput::default(),
            decoded_lanes: Vec::new(),
        }
    }

    /// (Re)builds the rate-specific machinery when `rate` differs from the
    /// cached one.
    fn ensure_rate(&mut self, rate: PhyRate) {
        if self.machinery.as_ref().map(|m| m.rate) != Some(rate) {
            self.machinery = Some(RateMachinery::new(rate));
        }
    }
}

impl Default for PhyScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The transmit pipeline: scramble → encode → puncture → interleave → map
/// → OFDM modulate.
#[derive(Debug, Clone, Copy)]
pub struct Transmitter {
    rate: PhyRate,
    /// Puncture-mask phase (see [`Puncturer::with_phase`]); 0 is the
    /// standard 802.11a pattern, nonzero phases are HARQ incremental
    /// redundancy retransmissions.
    phase: usize,
}

/// A transmitted packet: its baseband samples and layout.
#[derive(Debug, Clone)]
pub struct TxResult {
    /// Time-domain baseband samples (80 per OFDM symbol).
    pub samples: Vec<Cplx>,
    /// The packet layout (needed by the receiver).
    pub fields: PacketFields,
    /// Payload length in bits (convenience copy of `fields.payload_bits`).
    pub payload_bits: usize,
}

impl Transmitter {
    /// A transmitter at `rate` with the standard (phase-0) puncture mask.
    pub fn new(rate: PhyRate) -> Self {
        Self { rate, phase: 0 }
    }

    /// A transmitter whose puncture mask is rotated by `phase` — the HARQ
    /// incremental-redundancy form: a retransmission at a different phase
    /// sends a different subset of the mother-code bits, so the combined
    /// attempts see a lower effective code rate. Rotation preserves the
    /// kept-bit count over whole mask periods, so the symbol layout is
    /// identical to phase 0.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not within the rate's puncture-mask period.
    pub fn with_phase(rate: PhyRate, phase: usize) -> Self {
        // Construct eagerly so an invalid phase fails here, not mid-packet.
        let _ = Puncturer::with_phase(rate.code_rate(), phase);
        Self { rate, phase }
    }

    /// The configured rate.
    pub fn rate(&self) -> PhyRate {
        self.rate
    }

    /// The configured puncture-mask phase.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Modulates `payload` (a bit slice) into baseband samples.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a bit slice or the scramble seed is
    /// invalid.
    pub fn transmit(&self, payload: &[u8], scramble_seed: u8) -> TxResult {
        let mut scratch = PhyScratch::new();
        let mut samples = Vec::new();
        let fields = self.tx_into(payload, scramble_seed, &mut scratch, &mut samples);
        TxResult {
            samples,
            fields,
            payload_bits: payload.len(),
        }
    }

    /// Modulates `payload` into `out`, reusing `scratch` — the
    /// allocation-free form of [`Transmitter::transmit`] the scenario
    /// engine's workers run in their steady state.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a bit slice or the scramble seed is
    /// invalid.
    // lint: no_alloc
    pub fn tx_into(
        &self,
        payload: &[u8],
        scramble_seed: u8,
        scratch: &mut PhyScratch,
        out: &mut Vec<Cplx>,
    ) -> PacketFields {
        scratch.ensure_rate(self.rate);
        let PhyScratch {
            machinery,
            ofdm_tx,
            data_bits,
            coded,
            punctured,
            interleaved,
            packet_points,
            ..
        } = scratch;
        let m = machinery.as_mut().expect("machinery ensured above"); // lint: allow(panic-policy) — ensure_rate() at function entry filled the machinery slot

        let fields = PacketBuilder::new(self.rate).assemble_into(payload, scramble_seed, data_bits);
        m.encoder.reset();
        coded.clear();
        m.encoder.encode_into(data_bits, coded);
        punctured.clear();
        Puncturer::with_phase(self.rate.code_rate(), self.phase).puncture_into(coded, punctured);
        debug_assert_eq!(punctured.len(), fields.coded_bits());

        ofdm_tx.reset();
        out.clear();
        out.resize(fields.n_symbols * SYMBOL_LEN, Cplx::ZERO);
        let cbps = self.rate.coded_bits_per_symbol();
        // Map the whole packet into one constellation stream, then push
        // every symbol through the shared OFDM plan in one call.
        packet_points.clear();
        for sym_bits in punctured.chunks(cbps) {
            m.interleaver.interleave_into(sym_bits, interleaved);
            m.mapper.map_append(interleaved, packet_points);
        }
        ofdm_tx.modulate_packet_into(packet_points, out);
        fields
    }

    /// The frozen pre-plan form of [`Transmitter::tx_into`]: the same
    /// chain through the per-symbol reference bodies
    /// ([`Mapper::map_into_reference`],
    /// [`crate::OfdmModulator::modulate_into_reference`]). Differential
    /// oracle and perf baseline; samples are bit-identical by contract.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a bit slice or the scramble seed is
    /// invalid.
    pub fn tx_into_reference(
        &self,
        payload: &[u8],
        scramble_seed: u8,
        scratch: &mut PhyScratch,
        out: &mut Vec<Cplx>,
    ) -> PacketFields {
        scratch.ensure_rate(self.rate);
        let PhyScratch {
            machinery,
            ofdm_tx,
            data_bits,
            coded,
            punctured,
            interleaved,
            points,
            ..
        } = scratch;
        let m = machinery.as_mut().expect("machinery ensured above"); // lint: allow(panic-policy) — ensure_rate() at function entry filled the machinery slot

        let fields = PacketBuilder::new(self.rate).assemble_into(payload, scramble_seed, data_bits);
        m.encoder.reset();
        coded.clear();
        m.encoder.encode_into(data_bits, coded);
        punctured.clear();
        Puncturer::with_phase(self.rate.code_rate(), self.phase).puncture_into(coded, punctured);
        debug_assert_eq!(punctured.len(), fields.coded_bits());

        ofdm_tx.reset();
        out.clear();
        out.resize(fields.n_symbols * SYMBOL_LEN, Cplx::ZERO);
        let cbps = self.rate.coded_bits_per_symbol();
        for (i, sym_bits) in punctured.chunks(cbps).enumerate() {
            m.interleaver.interleave_into(sym_bits, interleaved);
            m.mapper.map_into_reference(interleaved, points);
            ofdm_tx.modulate_into_reference(points, &mut out[i * SYMBOL_LEN..(i + 1) * SYMBOL_LEN]);
        }
        fields
    }
}

/// The receive pipeline: OFDM demodulate → soft demap → deinterleave →
/// depuncture → soft decode → descramble.
pub struct Receiver {
    rate: PhyRate,
    demapper: Demapper,
    decoder: Box<dyn SoftDecoder>,
    /// Puncture-mask phase the front end expects (see
    /// [`Transmitter::with_phase`]); mutable via
    /// [`Receiver::set_puncture_phase`] so HARQ can re-aim one receiver at
    /// each retransmission's phase without rebuilding machinery.
    phase: usize,
}

/// A received packet: payload decisions plus the SoftPHY side information.
///
/// The buffers are reusable: passing the same `RxResult` to
/// [`Receiver::rx_from`] repeatedly retains their capacity.
#[derive(Debug, Clone, Default)]
pub struct RxResult {
    /// Descrambled payload bit decisions.
    pub payload: Vec<u8>,
    /// Per-payload-bit SoftPHY hints (6-bit confidence, 0..=63).
    pub hints: Vec<u16>,
    /// Per-payload-bit raw soft magnitudes from the decoder (pre-hint
    /// quantization), for calibration studies.
    pub soft_magnitudes: Vec<u32>,
    /// Which decoder produced this result.
    pub decoder_id: &'static str,
}

impl RxResult {
    /// Counts bit errors against the transmitted payload.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn bit_errors(&self, sent: &[u8]) -> usize {
        assert_eq!(sent.len(), self.payload.len(), "payload length mismatch");
        self.payload
            .iter()
            .zip(sent)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl Receiver {
    /// A receiver with an explicit decoder and demapper.
    pub fn new(rate: PhyRate, demapper: Demapper, decoder: Box<dyn SoftDecoder>) -> Self {
        Self {
            rate,
            demapper,
            decoder,
            phase: 0,
        }
    }

    /// A hard-decision baseline receiver (Viterbi, 8-bit demapper).
    pub fn viterbi(rate: PhyRate) -> Self {
        Self::new(
            rate,
            Demapper::new(rate.modulation(), 8, SnrScaling::Off),
            Box::new(ViterbiDecoder::new(&ConvCode::ieee80211())),
        )
    }

    /// [`Receiver::viterbi`] built on an already-compiled trellis — the
    /// form the scenario engine's per-rate oracle bank uses so one table
    /// build serves all eight rates.
    pub fn viterbi_shared(rate: PhyRate, trellis: std::sync::Arc<CompiledTrellis>) -> Self {
        Self::new(
            rate,
            Demapper::new(rate.modulation(), 8, SnrScaling::Off),
            Box::new(ViterbiDecoder::with_shared_trellis(trellis)),
        )
    }

    /// The demapper width of the SoftPHY hint path for a modulation: 4
    /// bits for BPSK/QPSK, 5 for the QAM constellations — sized so the
    /// 6-bit hint range spans BER 10⁻¹..10⁻⁷ (kept in sync with
    /// `wilis-softphy`'s scaling factors, which assume these widths).
    pub fn hint_demapper_bits(modulation: crate::Modulation) -> u32 {
        match modulation {
            crate::Modulation::Bpsk | crate::Modulation::Qpsk => 4,
            crate::Modulation::Qam16 | crate::Modulation::Qam64 => 5,
        }
    }

    /// A SoftPHY receiver using SOVA with the paper's `l = k = 64`, on
    /// the hint-path demapper (see [`Receiver::hint_demapper_bits`]).
    pub fn sova(rate: PhyRate) -> Self {
        let bits = Self::hint_demapper_bits(rate.modulation());
        Self::new(
            rate,
            Demapper::new(rate.modulation(), bits, SnrScaling::Off),
            Box::new(SovaDecoder::new(&ConvCode::ieee80211(), 64, 64)),
        )
    }

    /// A SoftPHY receiver using sliding-window BCJR with block length 64,
    /// on the hint-path demapper (see [`Receiver::hint_demapper_bits`]).
    pub fn bcjr(rate: PhyRate) -> Self {
        let bits = Self::hint_demapper_bits(rate.modulation());
        Self::new(
            rate,
            Demapper::new(rate.modulation(), bits, SnrScaling::Off),
            Box::new(BcjrDecoder::new(&ConvCode::ieee80211(), 64)),
        )
    }

    /// The configured rate.
    pub fn rate(&self) -> PhyRate {
        self.rate
    }

    /// The puncture-mask phase the front end currently expects.
    pub fn puncture_phase(&self) -> usize {
        self.phase
    }

    /// Aims the front end at a [`Transmitter::with_phase`] retransmission:
    /// erasures are re-inserted where *that* phase's mask stole bits. Only
    /// the depuncture stage depends on the phase, so this is a field write
    /// — no machinery rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not within the rate's puncture-mask period.
    pub fn set_puncture_phase(&mut self, phase: usize) {
        let _ = Depuncturer::with_phase(self.rate.code_rate(), phase);
        self.phase = phase;
    }

    /// Demodulates and decodes a packet of known payload length.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not exactly the packet's symbol count, or the
    /// scramble seed is invalid.
    pub fn receive(
        &mut self,
        samples: &[Cplx],
        payload_bits: usize,
        scramble_seed: u8,
    ) -> RxResult {
        let mut scratch = PhyScratch::new();
        let mut out = RxResult::default();
        self.rx_from(samples, payload_bits, scramble_seed, &mut scratch, &mut out);
        out
    }

    /// Demodulates and decodes a packet into `out`, reusing `scratch` —
    /// the allocation-free form of [`Receiver::receive`] the scenario
    /// engine's workers run in their steady state.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not exactly the packet's symbol count, or the
    /// scramble seed is invalid.
    // lint: no_alloc
    pub fn rx_from(
        &mut self,
        samples: &[Cplx],
        payload_bits: usize,
        scramble_seed: u8,
        scratch: &mut PhyScratch,
        out: &mut RxResult,
    ) {
        let mut mother = std::mem::take(&mut scratch.mother);
        self.rx_front_end_into(samples, payload_bits, scratch, &mut mother);
        self.rx_decode_from(&mother, payload_bits, scramble_seed, scratch, out);
        scratch.mother = mother;
    }

    /// The front half of [`Receiver::rx_from`]: demodulates, demaps,
    /// deinterleaves, and depunctures one packet, leaving the pre-decode
    /// mother-code LLR plane in `mother_out`. This is the plane HARQ
    /// soft-combining retains across retransmissions — combine planes with
    /// [`wilis_fec::combine_llrs_into`], then re-enter the decoder through
    /// [`Receiver::rx_decode_from`].
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not exactly the packet's symbol count.
    // lint: no_alloc
    pub fn rx_front_end_into(
        &mut self,
        samples: &[Cplx],
        payload_bits: usize,
        scratch: &mut PhyScratch,
        mother_out: &mut Vec<Llr>,
    ) {
        let fields = PacketFields::for_payload(self.rate, payload_bits);
        assert_eq!(
            samples.len(),
            fields.n_symbols * SYMBOL_LEN,
            "sample count does not match packet layout"
        );
        scratch.ensure_rate(self.rate);
        let PhyScratch {
            machinery,
            ofdm_rx,
            carriers,
            symbol_llrs,
            punctured_llrs,
            ..
        } = scratch;
        let m = machinery.as_ref().expect("machinery ensured above"); // lint: allow(panic-policy) — ensure_rate() at function entry filled the machinery slot

        ofdm_rx.reset();
        let cbps = self.rate.coded_bits_per_symbol();
        // Whole-packet streaming through every stage: all symbols through
        // the shared OFDM plan, one demap call over the full carrier
        // stream, one packet-level deinterleave over the full LLR stream.
        ofdm_rx.demodulate_packet_into(samples, carriers);
        self.demapper.demap_into(carriers, symbol_llrs);
        debug_assert_eq!(symbol_llrs.len(), fields.n_symbols * cbps);
        m.deinterleaver
            .deinterleave_packet_into(symbol_llrs, punctured_llrs);
        let mother_len = fields.data_bits() * 2;
        mother_out.clear();
        Depuncturer::with_phase(self.rate.code_rate(), self.phase).depuncture_into(
            punctured_llrs,
            mother_len,
            mother_out,
        );
    }

    /// The back half of [`Receiver::rx_from`]: decodes a mother-code LLR
    /// plane (fresh from [`Receiver::rx_front_end_into`], or a
    /// HARQ-combined one) and unpacks the payload into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `mother`'s length is not the packet's mother-bit count,
    /// or the scramble seed is invalid.
    // lint: no_alloc
    pub fn rx_decode_from(
        &mut self,
        mother: &[Llr],
        payload_bits: usize,
        scramble_seed: u8,
        scratch: &mut PhyScratch,
        out: &mut RxResult,
    ) {
        let fields = PacketFields::for_payload(self.rate, payload_bits);
        assert_eq!(
            mother.len(),
            fields.data_bits() * 2,
            "mother stream length does not match the packet layout"
        );
        let decoded = &mut scratch.decoded;
        self.decoder.decode_terminated_into(mother, decoded);
        debug_assert_eq!(decoded.bits.len(), fields.data_bits() - TAIL_BITS);

        Self::unpack_decoded(
            self.rate,
            &*self.decoder,
            decoded,
            &fields,
            scramble_seed,
            out,
        );
    }

    /// Demodulates and decodes `lane_samples.len()` same-rate,
    /// same-length packets in lockstep — the batch form of
    /// [`Receiver::rx_from`] behind the scenario engine's fused
    /// shared-channel groups. Every stage runs lane-major: one shared
    /// OFDM plan drives all lanes' FFTs, one demap/deinterleave/depuncture
    /// pass moves whole lane rows, and the decoder's
    /// [`SoftDecoder::decode_terminated_batch_into`] runs the lanes
    /// through the structure-of-arrays trellis kernels (falling back to
    /// per-lane scalar decode beyond `wilis_fec::MAX_BATCH_LANES`).
    ///
    /// Per lane, every `RxResult` is **bit-identical** to a scalar
    /// [`Receiver::rx_from`] of that lane — batching is purely a
    /// throughput lever; the equivalence suite enforces this.
    ///
    /// # Panics
    ///
    /// Panics if `lane_samples` is empty, `scramble_seeds` or `outs`
    /// disagree with it in length, any lane is not exactly the packet's
    /// symbol count, or a scramble seed is invalid.
    // lint: no_alloc
    pub fn rx_batch_from<S: AsRef<[Cplx]>>(
        &mut self,
        lane_samples: &[S],
        payload_bits: usize,
        scramble_seeds: &[u8],
        scratch: &mut PhyScratch,
        outs: &mut [RxResult],
    ) {
        let mut mother = std::mem::take(&mut scratch.mother);
        self.rx_batch_front_end_into(lane_samples, payload_bits, scratch, &mut mother);
        self.rx_batch_decode_from(
            &mother,
            lane_samples.len(),
            payload_bits,
            scramble_seeds,
            scratch,
            outs,
        );
        scratch.mother = mother;
    }

    /// True when `other`'s receive front end — demodulator, demapper,
    /// deinterleaver, depuncturer — produces bit-identical mother LLR
    /// streams to this receiver's for the same samples: same rate, same
    /// demapper configuration. Receivers that differ only in decoder
    /// (e.g. SOVA vs BCJR on the hint-width demapper) satisfy this, which
    /// lets one [`Receiver::rx_batch_front_end_into`] feed several
    /// [`Receiver::rx_batch_decode_from`] calls.
    pub fn front_end_matches(&self, other: &Receiver) -> bool {
        self.rate == other.rate
            && self.demapper.config() == other.demapper.config()
            && self.phase == other.phase
    }

    /// The front half of [`Receiver::rx_batch_from`]: demodulates,
    /// demaps, deinterleaves, and depunctures all lanes in lockstep,
    /// leaving the lane-major mother LLR stream in `mother_out` (soft bit
    /// `i` of lane `l` at `mother_out[i * lanes + l]`). Split out so
    /// callers holding several receivers whose front ends agree (see
    /// [`Receiver::front_end_matches`]) can run this once and decode the
    /// same stream through each receiver's decoder.
    ///
    /// # Panics
    ///
    /// Panics if `lane_samples` is empty or any lane is not exactly the
    /// packet's symbol count.
    // lint: no_alloc
    pub fn rx_batch_front_end_into<S: AsRef<[Cplx]>>(
        &mut self,
        lane_samples: &[S],
        payload_bits: usize,
        scratch: &mut PhyScratch,
        mother_out: &mut Vec<Llr>,
    ) {
        let lanes = lane_samples.len();
        assert!(lanes > 0, "at least one lane");
        let fields = PacketFields::for_payload(self.rate, payload_bits);
        for lane in lane_samples {
            assert_eq!(
                lane.as_ref().len(),
                fields.n_symbols * SYMBOL_LEN,
                "sample count does not match packet layout"
            );
        }
        scratch.ensure_rate(self.rate);
        let PhyScratch {
            machinery,
            ofdm_rx,
            carriers,
            symbol_llrs,
            punctured_llrs,
            ..
        } = scratch;
        let m = machinery.as_ref().expect("machinery ensured above"); // lint: allow(panic-policy) — ensure_rate() at function entry filled the machinery slot

        ofdm_rx.reset();
        let cbps = self.rate.coded_bits_per_symbol();
        ofdm_rx.demodulate_packet_batch_into(lane_samples, carriers);
        self.demapper.demap_batch_into(carriers, lanes, symbol_llrs);
        debug_assert_eq!(symbol_llrs.len(), fields.n_symbols * cbps * lanes);
        m.deinterleaver
            .deinterleave_packet_lanes_into(symbol_llrs, lanes, punctured_llrs);
        let mother_len = fields.data_bits() * 2;
        mother_out.clear();
        Depuncturer::with_phase(self.rate.code_rate(), self.phase).depuncture_lanes_into(
            punctured_llrs,
            lanes,
            mother_len,
            mother_out,
        );
    }

    /// The back half of [`Receiver::rx_batch_from`]: decodes a lane-major
    /// mother LLR stream (as produced by
    /// [`Receiver::rx_batch_front_end_into`] on a front-end-compatible
    /// receiver) and unpacks each lane into its `RxResult`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero, `scramble_seeds`/`outs` disagree with
    /// it, `mother`'s length is not the packet's mother bits times
    /// `lanes`, or a scramble seed is invalid.
    // lint: no_alloc
    pub fn rx_batch_decode_from(
        &mut self,
        mother: &[Llr],
        lanes: usize,
        payload_bits: usize,
        scramble_seeds: &[u8],
        scratch: &mut PhyScratch,
        outs: &mut [RxResult],
    ) {
        assert!(lanes > 0, "at least one lane");
        assert_eq!(scramble_seeds.len(), lanes, "one scramble seed per lane");
        assert_eq!(outs.len(), lanes, "one RxResult per lane");
        let fields = PacketFields::for_payload(self.rate, payload_bits);
        assert_eq!(
            mother.len(),
            fields.data_bits() * 2 * lanes,
            "mother stream length does not match the packet layout"
        );
        let decoded_lanes = &mut scratch.decoded_lanes;
        decoded_lanes.resize_with(lanes, DecodeOutput::default);
        self.decoder
            .decode_terminated_batch_into(mother, lanes, &mut decoded_lanes[..lanes]);

        for (l, out) in outs.iter_mut().enumerate() {
            debug_assert_eq!(decoded_lanes[l].bits.len(), fields.data_bits() - TAIL_BITS);
            Self::unpack_decoded(
                self.rate,
                &*self.decoder,
                &decoded_lanes[l],
                &fields,
                scramble_seeds[l],
                out,
            );
        }
    }

    /// The frozen pre-plan form of [`Receiver::rx_from`]: per-symbol
    /// demodulation and demapping through the reference bodies
    /// ([`crate::OfdmDemodulator::demodulate_into_reference`],
    /// [`Demapper::demap_into_reference`]), then the same decoder.
    /// Differential oracle and perf baseline; the LLR stream and
    /// therefore the whole `RxResult` are bit-identical by contract.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is not exactly the packet's symbol count, or the
    /// scramble seed is invalid.
    pub fn rx_from_reference(
        &mut self,
        samples: &[Cplx],
        payload_bits: usize,
        scramble_seed: u8,
        scratch: &mut PhyScratch,
        out: &mut RxResult,
    ) {
        let fields = PacketFields::for_payload(self.rate, payload_bits);
        assert_eq!(
            samples.len(),
            fields.n_symbols * SYMBOL_LEN,
            "sample count does not match packet layout"
        );
        scratch.ensure_rate(self.rate);
        let PhyScratch {
            machinery,
            ofdm_rx,
            carriers,
            symbol_llrs,
            punctured_llrs,
            mother,
            decoded,
            ..
        } = scratch;
        let m = machinery.as_ref().expect("machinery ensured above"); // lint: allow(panic-policy) — ensure_rate() at function entry filled the machinery slot

        ofdm_rx.reset();
        let cbps = self.rate.coded_bits_per_symbol();
        punctured_llrs.clear();
        punctured_llrs.reserve(fields.coded_bits());
        for sym_samples in samples.chunks(SYMBOL_LEN) {
            ofdm_rx.demodulate_into_reference(sym_samples, carriers);
            self.demapper.demap_into_reference(carriers, symbol_llrs);
            debug_assert_eq!(symbol_llrs.len(), cbps);
            m.deinterleaver
                .deinterleave_append(symbol_llrs, punctured_llrs);
        }
        let mother_len = fields.data_bits() * 2;
        mother.clear();
        Depuncturer::with_phase(self.rate.code_rate(), self.phase).depuncture_into(
            punctured_llrs,
            mother_len,
            mother,
        );
        self.decoder.decode_terminated_into(mother, decoded);
        debug_assert_eq!(decoded.bits.len(), fields.data_bits() - TAIL_BITS);

        Self::unpack_decoded(
            self.rate,
            &*self.decoder,
            decoded,
            &fields,
            scramble_seed,
            out,
        );
    }

    /// Shared tail of both RX forms: descramble the payload region and
    /// copy out hints and soft magnitudes.
    fn unpack_decoded(
        rate: PhyRate,
        decoder: &dyn SoftDecoder,
        decoded: &DecodeOutput,
        fields: &PacketFields,
        scramble_seed: u8,
        out: &mut RxResult,
    ) {
        let payload_bits = fields.payload_bits;
        PacketBuilder::new(rate).disassemble_into(
            &decoded.bits,
            fields,
            scramble_seed,
            &mut out.payload,
        );
        // Hints and magnitudes for the payload region only (descrambling
        // flips bit meanings, not confidences).
        out.hints.clear();
        out.hints
            .extend((SERVICE_BITS..SERVICE_BITS + payload_bits).map(|i| decoded.hint(i)));
        out.soft_magnitudes.clear();
        out.soft_magnitudes.extend(
            decoded.soft[SERVICE_BITS..SERVICE_BITS + payload_bits]
                .iter()
                .map(|&s| s.unsigned_abs()),
        );
        out.decoder_id = decoder.id();
    }
}

impl std::fmt::Debug for Receiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Receiver({}, {} decoder, {}-bit demapper)",
            self.rate,
            self.decoder.id(),
            self.demapper.output_bits()
        )
    }
}

/// Verifies the scrambler seed used by TX and RX agree; helper for tests
/// that pass seeds around.
pub(crate) fn _seed_check(seed: u8) -> Scrambler {
    Scrambler::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 29 + 5) % 2) as u8).collect()
    }

    #[test]
    fn clean_roundtrip_every_rate_every_decoder() {
        for rate in PhyRate::all() {
            let data = payload(600);
            let tx = Transmitter::new(rate).transmit(&data, 0x5D);
            for mut rx in [
                Receiver::viterbi(rate),
                Receiver::sova(rate),
                Receiver::bcjr(rate),
            ] {
                let got = rx.receive(&tx.samples, data.len(), 0x5D);
                assert_eq!(got.bit_errors(&data), 0, "{rate} with {}", got.decoder_id);
            }
        }
    }

    #[test]
    fn empty_payload_roundtrip() {
        let rate = PhyRate::BpskHalf;
        let tx = Transmitter::new(rate).transmit(&[], 0x11);
        let got = Receiver::viterbi(rate).receive(&tx.samples, 0, 0x11);
        assert!(got.payload.is_empty());
        assert_eq!(tx.fields.n_symbols, 1);
    }

    #[test]
    fn hints_cover_payload_exactly() {
        let rate = PhyRate::Qam16Half;
        let data = payload(1704);
        let tx = Transmitter::new(rate).transmit(&data, 0x5D);
        let got = Receiver::sova(rate).receive(&tx.samples, data.len(), 0x5D);
        assert_eq!(got.hints.len(), 1704);
        assert_eq!(got.soft_magnitudes.len(), 1704);
        assert!(got.hints.iter().all(|&h| h <= 63));
        // Clean channel: confidence should be mostly pegged high.
        let high = got.hints.iter().filter(|&&h| h >= 32).count();
        assert!(high > 1500, "only {high}/1704 high-confidence hints");
    }

    #[test]
    fn wrong_seed_corrupts_payload_but_not_confidence() {
        let rate = PhyRate::QpskHalf;
        let data = payload(400);
        let tx = Transmitter::new(rate).transmit(&data, 0x5D);
        let got = Receiver::viterbi(rate).receive(&tx.samples, data.len(), 0x2A);
        assert!(
            got.bit_errors(&data) > 100,
            "descrambling with the wrong seed must scramble the payload"
        );
    }

    #[test]
    fn sample_count_matches_fields() {
        let rate = PhyRate::Qam64ThreeQuarters;
        let data = payload(1500 * 8);
        let tx = Transmitter::new(rate).transmit(&data, 0x5D);
        assert_eq!(tx.samples.len(), tx.fields.n_symbols * SYMBOL_LEN);
        // 12000 data bits at 216/symbol (+22 overhead): 56 symbols.
        assert_eq!(tx.fields.n_symbols, 56);
    }

    #[test]
    fn phased_retransmission_roundtrips_cleanly() {
        // Every IR phase of a punctured rate must decode clean on a clean
        // channel when TX and RX agree on the phase.
        for rate in [PhyRate::QpskThreeQuarters, PhyRate::Qam16Half] {
            let period = rate.code_rate().mask().len();
            let data = payload(600);
            for phase in 0..period {
                let tx = Transmitter::with_phase(rate, phase).transmit(&data, 0x5D);
                let mut rx = Receiver::sova(rate);
                rx.set_puncture_phase(phase);
                let got = rx.receive(&tx.samples, data.len(), 0x5D);
                assert_eq!(got.bit_errors(&data), 0, "{rate} phase {phase}");
            }
        }
    }

    #[test]
    fn scalar_split_matches_monolithic_rx() {
        let rate = PhyRate::Qam16ThreeQuarters;
        let data = payload(800);
        let tx = Transmitter::new(rate).transmit(&data, 0x5D);
        let mut rx = Receiver::bcjr(rate);
        let mut scratch = PhyScratch::new();
        let mut whole = RxResult::default();
        rx.rx_from(&tx.samples, data.len(), 0x5D, &mut scratch, &mut whole);

        let mut mother = Vec::new();
        let mut halves = RxResult::default();
        rx.rx_front_end_into(&tx.samples, data.len(), &mut scratch, &mut mother);
        rx.rx_decode_from(&mother, data.len(), 0x5D, &mut scratch, &mut halves);
        assert_eq!(whole.payload, halves.payload);
        assert_eq!(whole.hints, halves.hints);
        assert_eq!(whole.soft_magnitudes, halves.soft_magnitudes);
    }

    #[test]
    #[should_panic(expected = "does not match packet layout")]
    fn truncated_samples_panic() {
        let rate = PhyRate::BpskHalf;
        let tx = Transmitter::new(rate).transmit(&payload(100), 0x5D);
        let _ = Receiver::viterbi(rate).receive(&tx.samples[..80], 100, 0x5D);
    }
}
