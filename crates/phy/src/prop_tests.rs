//! Randomized property tests across the baseband (deterministic,
//! self-seeded — the offline analog of a proptest suite).

use wilis_channel::{AwgnChannel, Channel, SnrDb};
use wilis_fxp::rng::SmallRng;

use crate::{PhyRate, Receiver, Transmitter};

fn rate_at(rng: &mut SmallRng) -> PhyRate {
    PhyRate::all()[rng.gen_i64(0, 7) as usize]
}

/// TX→RX is the identity on a clean channel for arbitrary payloads,
/// rates and scramble seeds.
#[test]
fn clean_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xB41);
    for _ in 0..24 {
        let rate = rate_at(&mut rng);
        let n = rng.gen_i64(1, 799) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.gen_bit()).collect();
        let seed = rng.gen_i64(1, 0x7F) as u8;
        let tx = Transmitter::new(rate).transmit(&payload, seed);
        let got = Receiver::viterbi(rate).receive(&tx.samples, payload.len(), seed);
        assert_eq!(got.bit_errors(&payload), 0);
    }
}

/// At generously high SNR every decoder still delivers the payload.
#[test]
fn high_snr_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xB42);
    for _ in 0..8 {
        let rate = rate_at(&mut rng);
        let chan_seed = rng.next_u64();
        let payload: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(35.0), chan_seed).apply(&mut samples);
        for mut rx in [
            Receiver::viterbi(rate),
            Receiver::sova(rate),
            Receiver::bcjr(rate),
        ] {
            let got = rx.receive(&samples, payload.len(), 0x5D);
            assert_eq!(
                got.bit_errors(&payload),
                0,
                "{} at {}",
                got.decoder_id,
                rate
            );
        }
    }
}

/// The number of transmitted samples is exactly 80 per symbol and the
/// layout is consistent for any payload size.
#[test]
fn sample_accounting() {
    let mut rng = SmallRng::seed_from_u64(0xB43);
    for _ in 0..24 {
        let rate = rate_at(&mut rng);
        let n = rng.gen_i64(0, 4000) as usize;
        let payload: Vec<u8> = vec![1; n];
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        assert_eq!(tx.samples.len(), tx.fields.n_symbols * crate::SYMBOL_LEN);
        assert!(tx.fields.pad_bits < rate.data_bits_per_symbol());
        assert_eq!(tx.fields.data_bits() % rate.data_bits_per_symbol(), 0);
    }
}

/// Average transmitted sample power is near unity regardless of rate
/// (so the channel's SNR definition is rate-independent).
#[test]
fn unit_sample_power() {
    for rate in PhyRate::all() {
        let payload: Vec<u8> = (0..2000).map(|i| ((i * 31 + 1) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let p: f64 = tx.samples.iter().map(|s| s.norm_sq()).sum::<f64>() / tx.samples.len() as f64;
        assert!((0.6..1.4).contains(&p), "{rate}: sample power {p}");
    }
}
