//! Property-based tests across the baseband.

use proptest::prelude::*;
use wilis_channel::{AwgnChannel, Channel, SnrDb};

use crate::{PhyRate, Receiver, Transmitter};

fn arb_rate() -> impl Strategy<Value = PhyRate> {
    (0usize..8).prop_map(|i| PhyRate::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TX→RX is the identity on a clean channel for arbitrary payloads,
    /// rates and scramble seeds.
    #[test]
    fn clean_roundtrip(
        rate in arb_rate(),
        payload in proptest::collection::vec(0u8..2, 1..800),
        seed in 1u8..0x80,
    ) {
        let tx = Transmitter::new(rate).transmit(&payload, seed);
        let got = Receiver::viterbi(rate).receive(&tx.samples, payload.len(), seed);
        prop_assert_eq!(got.bit_errors(&payload), 0);
    }

    /// At generously high SNR every decoder still delivers the payload.
    #[test]
    fn high_snr_roundtrip(
        rate in arb_rate(),
        chan_seed in any::<u64>(),
    ) {
        let payload: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(35.0), chan_seed).apply(&mut samples);
        for mut rx in [Receiver::viterbi(rate), Receiver::sova(rate), Receiver::bcjr(rate)] {
            let got = rx.receive(&samples, payload.len(), 0x5D);
            prop_assert_eq!(got.bit_errors(&payload), 0, "{} at {}", got.decoder_id, rate);
        }
    }

    /// The number of transmitted samples is exactly 80 per symbol and the
    /// layout is consistent for any payload size.
    #[test]
    fn sample_accounting(rate in arb_rate(), n in 0usize..4000) {
        let payload: Vec<u8> = vec![1; n];
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        prop_assert_eq!(tx.samples.len(), tx.fields.n_symbols * crate::SYMBOL_LEN);
        prop_assert!(tx.fields.pad_bits < rate.data_bits_per_symbol());
        prop_assert_eq!(
            tx.fields.data_bits() % rate.data_bits_per_symbol(), 0
        );
    }

    /// Average transmitted sample power is near unity regardless of rate
    /// (so the channel's SNR definition is rate-independent).
    #[test]
    fn unit_sample_power(rate in arb_rate()) {
        let payload: Vec<u8> = (0..2000).map(|i| ((i * 31 + 1) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let p: f64 = tx.samples.iter().map(|s| s.norm_sq()).sum::<f64>()
            / tx.samples.len() as f64;
        prop_assert!((0.6..1.4).contains(&p), "{rate}: sample power {p}");
    }
}
