//! Soft demapper (Tosato–Bisaglia simplified LLRs) with configurable SNR
//! scaling and output quantization.
//!
//! This module is where the paper's central approximation story lives
//! (§4.1): the exact per-bit LLR under AWGN is
//!
//! ```text
//! LLR(i) = (Es/N0) × S_modulation × R_dist(i)        (paper eq. 3)
//! ```
//!
//! but hardware demappers (a) replace `R_dist` with Tosato & Bisaglia's
//! multiplier-free piecewise-linear approximations, and (b) drop the
//! `Es/N0 × S_modulation` prefactor entirely, because Viterbi decisions
//! depend only on the *relative ordering* of metrics. That reduces the
//! required soft bit-width from 23–28 bits to 3–8 bits — and destroys the
//! *magnitude* information BER estimation needs, which is exactly what the
//! SoftPHY estimator's scaling factors (paper eq. 5) must reintroduce.
//! [`SnrScaling`] selects which behaviour to model.

use wilis_fec::Llr;
use wilis_fxp::Cplx;

use crate::mapper::Modulation;

/// How the demapper treats the `Es/N0 × S_mod` prefactor of equation 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnrScaling {
    /// Hardware mode: the prefactor is dropped (§4.1). Decoding quality is
    /// unaffected; absolute LLR magnitudes become SNR-independent.
    Off,
    /// The estimator's compromise (§4.2): scale by a pre-computed constant
    /// SNR (linear `Es/N0`) chosen per modulation, avoiding a run-time SNR
    /// estimator at the cost of slight BER over/under-estimation.
    ConstantLinear(f64),
    /// Oracle mode: scale by the true per-packet linear `Es/N0` — the
    /// upper bound a perfect SNR estimator would achieve.
    TrueLinear(f64),
}

/// A soft demapper for one modulation, quantizing LLRs to `output_bits`.
///
/// # Example
///
/// ```
/// use wilis_phy::{Demapper, Mapper, Modulation, SnrScaling};
///
/// let m = Mapper::new(Modulation::Qam16);
/// let d = Demapper::new(Modulation::Qam16, 8, SnrScaling::Off);
/// let bits = [1u8, 0, 0, 1];
/// let syms = m.map(&bits);
/// let llrs = d.demap(&syms);
/// // Sign of each LLR recovers the transmitted bit on a clean channel.
/// for (b, l) in bits.iter().zip(&llrs) {
///     assert_eq!(*b == 1, *l > 0, "bit {b} got llr {l}");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Demapper {
    pub(crate) modulation: Modulation,
    output_bits: u32,
    scaling: SnrScaling,
    /// Float-to-integer gain mapping the useful analog range onto the
    /// quantizer's full scale.
    pub(crate) gain: f64,
    /// `Es/N0 × S_mod` prefactor, hoisted out of the per-symbol loop (the
    /// frozen reference body recomputes it per call — same value).
    factor: f64,
    /// `1 / K_mod`: received coordinates → grid units, hoisted likewise.
    inv_k: f64,
}

impl Demapper {
    /// The configuration triple that fully determines this demapper's
    /// output for a given symbol stream — two demappers with equal
    /// configs produce bit-identical LLRs.
    pub(crate) fn config(&self) -> (Modulation, u32, SnrScaling) {
        (self.modulation, self.output_bits, self.scaling)
    }

    /// A demapper emitting `output_bits`-wide soft values.
    ///
    /// The paper's "exact" configuration is 23–28 bits; its hardware
    /// configuration is 3–8 bits. The quantizer full-scale is set to 1.5×
    /// the constellation's largest axis coordinate (head-room for noise)
    /// under [`SnrScaling::Off`], and widened by the scale factor
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `output_bits` is not in `2..=28`.
    pub fn new(modulation: Modulation, output_bits: u32, scaling: SnrScaling) -> Self {
        assert!(
            (2..=28).contains(&output_bits),
            "output width {output_bits} outside the paper's 2..=28 range"
        );
        let full_scale = (1i64 << (output_bits - 1)) - 1;
        // Analog range: grid units (coordinates normalized by kmod). The
        // gain maps that range onto the quantizer, but never drops below
        // the level where the weakest clean constellation point (one grid
        // unit from its decision boundary) still rounds to at least one
        // LSB — hardware demappers clip the range rather than lose clean
        // decisions.
        let analog_range = modulation.grid_max() * 1.5;
        let factor = Self::scale_factor(modulation, scaling);
        let gain = (full_scale as f64 / (analog_range * factor)).max(0.75 / factor);
        Self {
            modulation,
            output_bits,
            scaling,
            gain,
            factor,
            inv_k: 1.0 / modulation.kmod(),
        }
    }

    pub(crate) fn scale_factor(modulation: Modulation, scaling: SnrScaling) -> f64 {
        match scaling {
            SnrScaling::Off => 1.0,
            // S_mod folds the constellation geometry into the exact LLR:
            // 4 * kmod^2 is the standard AWGN factor for square QAM.
            SnrScaling::ConstantLinear(snr) | SnrScaling::TrueLinear(snr) => {
                4.0 * modulation.kmod() * modulation.kmod() * snr
            }
        }
    }

    /// The configured output width in bits.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// The configured scaling mode.
    pub fn scaling(&self) -> SnrScaling {
        self.scaling
    }

    /// Largest representable output magnitude.
    pub fn full_scale(&self) -> Llr {
        ((1i64 << (self.output_bits - 1)) - 1) as Llr
    }

    /// Demaps received symbols to per-bit soft values
    /// (`bits_per_symbol` LLRs per symbol, same bit order as the mapper).
    pub fn demap(&self, symbols: &[Cplx]) -> Vec<Llr> {
        let mut out = Vec::new();
        self.demap_into(symbols, &mut out);
        out
    }

    /// Demaps received symbols into `out`, reusing its capacity (the
    /// allocation-free hot-path form).
    ///
    /// This is the compiled path: one match on the modulation selects a
    /// monomorphic per-modulation kernel whose inner loop is branchless
    /// (the Tosato–Bisaglia piecewise pieces run on `abs`, the quantizer
    /// on `clamp`), bit-identical to the interpreted reference body frozen
    /// as [`Demapper::demap_into_reference`].
    pub fn demap_into(&self, symbols: &[Cplx], out: &mut Vec<Llr>) {
        let bps = self.modulation.bits_per_symbol();
        // No `clear()` first: every slot is overwritten below, so resizing
        // in place zero-fills only newly grown tail elements (a no-op in
        // the steady state) instead of re-zeroing the whole buffer.
        out.resize(symbols.len() * bps, 0);
        let inv_k = self.inv_k;
        let factor = self.factor;
        let gain = self.gain;
        let fs = self.full_scale();
        // Work in grid units: constellation points at odd integers. Each
        // arm writes a fixed-width LLR group per symbol, so the output is
        // filled by indexed stores instead of length-checked pushes.
        match self.modulation {
            Modulation::Bpsk => {
                for (s, dst) in symbols.iter().zip(out.iter_mut()) {
                    let ui = s.re * inv_k;
                    *dst = quantize(ui * factor, gain, fs);
                }
            }
            Modulation::Qpsk => {
                for (s, dst) in symbols.iter().zip(out.chunks_exact_mut(2)) {
                    let ui = s.re * inv_k;
                    let uq = s.im * inv_k;
                    dst[0] = quantize(ui * factor, gain, fs);
                    dst[1] = quantize(uq * factor, gain, fs);
                }
            }
            Modulation::Qam16 => {
                for (s, dst) in symbols.iter().zip(out.chunks_exact_mut(4)) {
                    let ui = s.re * inv_k;
                    let uq = s.im * inv_k;
                    // Tosato–Bisaglia: Λ(b_high) = u, Λ(b_low) = 2 − |u|.
                    dst[0] = quantize(ui * factor, gain, fs);
                    dst[1] = quantize((2.0 - ui.abs()) * factor, gain, fs);
                    dst[2] = quantize(uq * factor, gain, fs);
                    dst[3] = quantize((2.0 - uq.abs()) * factor, gain, fs);
                }
            }
            Modulation::Qam64 => {
                for (s, dst) in symbols.iter().zip(out.chunks_exact_mut(6)) {
                    let ui = s.re * inv_k;
                    let uq = s.im * inv_k;
                    dst[0] = quantize(ui * factor, gain, fs);
                    dst[1] = quantize((4.0 - ui.abs()) * factor, gain, fs);
                    dst[2] = quantize((2.0 - (ui.abs() - 4.0).abs()) * factor, gain, fs);
                    dst[3] = quantize(uq * factor, gain, fs);
                    dst[4] = quantize((4.0 - uq.abs()) * factor, gain, fs);
                    dst[5] = quantize((2.0 - (uq.abs() - 4.0).abs()) * factor, gain, fs);
                }
            }
        }
    }

    /// The lane-major lockstep form of [`Demapper::demap_into`]:
    /// `symbols` interlaces `lanes` equal-length carrier streams (symbol
    /// `i` of lane `l` at `symbols[i * lanes + l]`, the layout
    /// [`crate::OfdmDemodulator::demodulate_packet_batch_into`] emits),
    /// and the output interlaces the LLR streams the same way (soft bit
    /// `j` of lane `l` at `out[j * lanes + l]`). Per lane the arithmetic
    /// is exactly the scalar kernel's — same piecewise pieces, same
    /// `quantize` — so every lane's LLRs are bit-identical to a scalar
    /// demap of that lane.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `symbols.len()` is not a multiple of
    /// `lanes`.
    pub fn demap_batch_into(&self, symbols: &[Cplx], lanes: usize, out: &mut Vec<Llr>) {
        assert!(lanes > 0, "at least one lane");
        assert!(
            symbols.len() % lanes == 0,
            "lane-major input length {} not a multiple of lane count {lanes}",
            symbols.len()
        );
        let bps = self.modulation.bits_per_symbol();
        out.resize(symbols.len() * bps, 0);
        let inv_k = self.inv_k;
        let factor = self.factor;
        let gain = self.gain;
        let fs = self.full_scale();
        // One symbol row of lanes in, `bps` LLR rows of lanes out; the
        // lane index is the innermost, unit-stride axis in both.
        match self.modulation {
            Modulation::Bpsk => {
                for (row, dst) in symbols.chunks_exact(lanes).zip(out.chunks_exact_mut(lanes)) {
                    for (s, d) in row.iter().zip(dst.iter_mut()) {
                        let ui = s.re * inv_k;
                        *d = quantize(ui * factor, gain, fs);
                    }
                }
            }
            Modulation::Qpsk => {
                for (row, dst) in symbols
                    .chunks_exact(lanes)
                    .zip(out.chunks_exact_mut(2 * lanes))
                {
                    for (l, s) in row.iter().enumerate() {
                        let ui = s.re * inv_k;
                        let uq = s.im * inv_k;
                        dst[l] = quantize(ui * factor, gain, fs);
                        dst[lanes + l] = quantize(uq * factor, gain, fs);
                    }
                }
            }
            Modulation::Qam16 => {
                for (row, dst) in symbols
                    .chunks_exact(lanes)
                    .zip(out.chunks_exact_mut(4 * lanes))
                {
                    for (l, s) in row.iter().enumerate() {
                        let ui = s.re * inv_k;
                        let uq = s.im * inv_k;
                        dst[l] = quantize(ui * factor, gain, fs);
                        dst[lanes + l] = quantize((2.0 - ui.abs()) * factor, gain, fs);
                        dst[2 * lanes + l] = quantize(uq * factor, gain, fs);
                        dst[3 * lanes + l] = quantize((2.0 - uq.abs()) * factor, gain, fs);
                    }
                }
            }
            Modulation::Qam64 => {
                for (row, dst) in symbols
                    .chunks_exact(lanes)
                    .zip(out.chunks_exact_mut(6 * lanes))
                {
                    for (l, s) in row.iter().enumerate() {
                        let ui = s.re * inv_k;
                        let uq = s.im * inv_k;
                        dst[l] = quantize(ui * factor, gain, fs);
                        dst[lanes + l] = quantize((4.0 - ui.abs()) * factor, gain, fs);
                        dst[2 * lanes + l] =
                            quantize((2.0 - (ui.abs() - 4.0).abs()) * factor, gain, fs);
                        dst[3 * lanes + l] = quantize(uq * factor, gain, fs);
                        dst[4 * lanes + l] = quantize((4.0 - uq.abs()) * factor, gain, fs);
                        dst[5 * lanes + l] =
                            quantize((2.0 - (uq.abs() - 4.0).abs()) * factor, gain, fs);
                    }
                }
            }
        }
    }
}

/// Quantizes one analog LLR to the demapper's output width. The clamp is
/// value-equivalent to the reference body's saturate branches for every
/// input (including the `q == ±fs` edges and the NaN-to-0 cast).
#[inline(always)]
fn quantize(analog: f64, gain: f64, fs: Llr) -> Llr {
    let q = (analog * gain).round();
    q.clamp(-(fs as f64), fs as f64) as Llr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;

    fn all_bit_patterns(bps: usize) -> Vec<Vec<u8>> {
        (0..1usize << bps)
            .map(|v| (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect())
            .collect()
    }

    #[test]
    fn clean_signs_correct_for_all_modulations_and_points() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mapper = Mapper::new(m);
            let demapper = Demapper::new(m, 8, SnrScaling::Off);
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                let sym = mapper.map(&bits);
                let llrs = demapper.demap(&sym);
                for (i, (&b, &l)) in bits.iter().zip(&llrs).enumerate() {
                    assert_eq!(b == 1, l > 0, "{m}: bit {i} of {bits:?} demapped to {l}");
                }
            }
        }
    }

    #[test]
    fn narrow_width_still_decodes_clean_points() {
        // The hardware 3-bit configuration must keep clean signs intact.
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let mapper = Mapper::new(m);
            let demapper = Demapper::new(m, 3, SnrScaling::Off);
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                let sym = mapper.map(&bits);
                let llrs = demapper.demap(&sym);
                for (&b, &l) in bits.iter().zip(&llrs) {
                    assert_eq!(b == 1, l > 0, "{m}: {bits:?} -> {llrs:?}");
                }
            }
        }
    }

    #[test]
    fn confidence_decreases_toward_decision_boundary() {
        let d = Demapper::new(Modulation::Qam16, 8, SnrScaling::Off);
        let k = Modulation::Qam16.kmod();
        // b_high at u = 3 is farther from the boundary (u = 0) than u = 1.
        let far = d.demap(&[Cplx::new(3.0 * k, k)])[0];
        let near = d.demap(&[Cplx::new(1.0 * k, k)])[0];
        assert!(far > near && near > 0, "far {far} near {near}");
    }

    #[test]
    fn snr_scaling_amplifies_magnitude() {
        let sym = [Cplx::new(
            Modulation::Qam16.kmod(),
            Modulation::Qam16.kmod(),
        )];
        let off = Demapper::new(Modulation::Qam16, 12, SnrScaling::Off).demap(&sym);
        let hi = Demapper::new(Modulation::Qam16, 12, SnrScaling::TrueLinear(10.0)).demap(&sym);
        let lo = Demapper::new(Modulation::Qam16, 12, SnrScaling::TrueLinear(1.0)).demap(&sym);
        // Same sign everywhere; scaled outputs ordered by SNR once the
        // quantizer gain is accounted for. Saturation must not hit at these
        // small magnitudes.
        for i in 0..off.len() {
            assert_eq!(off[i] > 0, hi[i] > 0);
        }
        // The quantizer normalizes full-scale, so equal *analog* inputs at
        // different SNRs give equal quantized outputs; what differs is the
        // noise headroom. Verify gain bookkeeping kept values unsaturated.
        let fs = Demapper::new(Modulation::Qam16, 12, SnrScaling::TrueLinear(10.0)).full_scale();
        assert!(hi.iter().all(|&l| l.abs() < fs));
        assert!(lo.iter().all(|&l| l.abs() < fs));
    }

    #[test]
    fn quantizer_saturates_outliers() {
        let d = Demapper::new(Modulation::Bpsk, 4, SnrScaling::Off);
        let llr = d.demap(&[Cplx::new(100.0, 0.0)])[0];
        assert_eq!(llr, d.full_scale());
        let llr = d.demap(&[Cplx::new(-100.0, 0.0)])[0];
        assert_eq!(llr, -d.full_scale());
    }

    #[test]
    fn output_count_matches_bits_per_symbol() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let d = Demapper::new(m, 6, SnrScaling::Off);
            let n = d.demap(&[Cplx::ONE; 5]).len();
            assert_eq!(n, 5 * m.bits_per_symbol());
        }
    }

    #[test]
    #[should_panic(expected = "outside the paper")]
    fn absurd_width_rejected() {
        let _ = Demapper::new(Modulation::Bpsk, 40, SnrScaling::Off);
    }
}
