//! Planned-vs-reference front-end equivalence: the plan-driven FFT, the
//! table-driven OFDM paths, and the compiled map/demap kernels must
//! reproduce the frozen reference bodies (`crate::reference`) **bit for
//! bit** — identical `f64` sample bits, identical quantized LLRs — for
//! every modulation, width, and scaling mode. These tests are the
//! enforcement arm of the contract documented in [`crate::plan`], exactly
//! as `crates/fec/src/equiv_tests.rs` is for the trellis kernels. The
//! all-eight-`PhyRate` packet-level sweep lives in
//! `tests/phy_frontend_equiv.rs`.

use std::f64::consts::PI;

use wilis_fxp::rng::SmallRng;
use wilis_fxp::Cplx;

use crate::demapper::{Demapper, SnrScaling};
use crate::mapper::{Mapper, Modulation};
use crate::ofdm::{OfdmDemodulator, OfdmModulator, DATA_CARRIERS, SYMBOL_LEN};
use crate::pipeline::{PhyScratch, Receiver, RxResult, Transmitter};
use crate::plan::{fft_with, ifft_with, FftPlan};
use crate::rate::PhyRate;
use crate::{fft, ifft};

const MODULATIONS: [Modulation; 4] = [
    Modulation::Bpsk,
    Modulation::Qpsk,
    Modulation::Qam16,
    Modulation::Qam64,
];

fn random_cplx(rng: &mut SmallRng, mag: f64) -> Cplx {
    // Uniform box noise is all the differential tests need: any bit
    // pattern through both paths must agree, realistic or not.
    let re = rng.gen_i64(-1_000_000, 1_000_000) as f64 / 1_000_000.0 * mag;
    let im = rng.gen_i64(-1_000_000, 1_000_000) as f64 / 1_000_000.0 * mag;
    Cplx::new(re, im)
}

/// Exact f64-bit equality, with an index for diagnosis. `assert_eq!` on
/// `Cplx` would accept `-0.0 == 0.0`; the kernels must not even flip a
/// zero sign.
fn assert_bits_eq(a: &[Cplx], b: &[Cplx], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: index {i}: {x} vs {y}"
        );
    }
}

/// The planned FFT reproduces the reference recurrence bit for bit, at
/// every size the OFDM path and the property sizes use.
#[test]
fn planned_fft_matches_reference_bit_for_bit() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0001);
    for n in [16usize, 64, 256] {
        let plan = FftPlan::new(n);
        for round in 0..16 {
            let x: Vec<Cplx> = (0..n).map(|_| random_cplx(&mut rng, 4.0)).collect();
            let mut planned = x.clone();
            let mut reference = x;
            fft_with(&plan, &mut planned);
            fft(&mut reference);
            assert_bits_eq(&planned, &reference, &format!("fft n={n} round={round}"));

            ifft_with(&plan, &mut planned);
            ifft(&mut reference);
            assert_bits_eq(&planned, &reference, &format!("ifft n={n} round={round}"));
        }
    }
}

/// A naive O(N²) DFT pins the planned FFT to the transform definition
/// (not merely to the reference implementation) at N ∈ {16, 64, 256}.
#[test]
fn planned_fft_matches_naive_dft() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0002);
    for n in [16usize, 64, 256] {
        let plan = FftPlan::new(n);
        let x: Vec<Cplx> = (0..n).map(|_| random_cplx(&mut rng, 2.0)).collect();

        // X[k] = Σ_t x[t] e^(−j2πkt/N)
        let naive: Vec<Cplx> = (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| x[t] * Cplx::from_polar(1.0, -2.0 * PI * (k * t) as f64 / n as f64))
                    .sum()
            })
            .collect();

        let mut planned = x.clone();
        fft_with(&plan, &mut planned);
        for (k, (p, d)) in planned.iter().zip(&naive).enumerate() {
            assert!(
                (*p - *d).norm() < 1e-8 * (n as f64),
                "n={n} bin {k}: planned {p} vs naive {d}"
            );
        }

        // And the inverse undoes it (definition check for ifft_with).
        let mut back = planned;
        ifft_with(&plan, &mut back);
        for (t, (a, b)) in back.iter().zip(&x).enumerate() {
            assert!((*a - *b).norm() < 1e-9, "n={n} sample {t}: {a} vs {b}");
        }
    }
}

/// Planned OFDM modulation reproduces the reference body bit for bit
/// across multi-symbol frames (pilot polarity advancing), including the
/// whole-packet streaming form.
#[test]
fn planned_ofdm_modulator_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0003);
    for round in 0..8 {
        let n_sym = 1 + rng.gen_i64(0, 11) as usize;
        let carriers: Vec<Cplx> = (0..n_sym * DATA_CARRIERS)
            .map(|_| random_cplx(&mut rng, 1.5))
            .collect();

        let mut planned_mod = OfdmModulator::new();
        let mut packet_mod = OfdmModulator::new();
        let mut reference_mod = OfdmModulator::new();

        let mut planned = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];
        let mut packet = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];
        let mut reference = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];

        packet_mod.modulate_packet_into(&carriers, &mut packet);
        for (s, data) in carriers.chunks_exact(DATA_CARRIERS).enumerate() {
            planned_mod.modulate_into(data, &mut planned[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN]);
            reference_mod.modulate_into_reference(
                data,
                &mut reference[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN],
            );
        }
        assert_bits_eq(&planned, &reference, &format!("modulate round={round}"));
        assert_bits_eq(
            &packet,
            &reference,
            &format!("modulate_packet round={round}"),
        );
    }
}

/// Planned OFDM demodulation reproduces the reference body bit for bit,
/// including the whole-packet streaming form and the lazily-computed
/// pilot phase.
#[test]
fn planned_ofdm_demodulator_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0004);
    for round in 0..8 {
        let n_sym = 1 + rng.gen_i64(0, 11) as usize;
        // Arbitrary (even non-OFDM) sample buffers must agree too.
        let samples: Vec<Cplx> = (0..n_sym * SYMBOL_LEN)
            .map(|_| random_cplx(&mut rng, 2.0))
            .collect();

        let mut planned_demod = OfdmDemodulator::new();
        let mut packet_demod = OfdmDemodulator::new();
        let mut reference_demod = OfdmDemodulator::new();

        let mut packet = Vec::new();
        packet_demod.demodulate_packet_into(&samples, &mut packet);

        let mut planned_sym = Vec::new();
        let mut reference_sym = Vec::new();
        for (s, sym) in samples.chunks_exact(SYMBOL_LEN).enumerate() {
            planned_demod.demodulate_into(sym, &mut planned_sym);
            reference_demod.demodulate_into_reference(sym, &mut reference_sym);
            let ctx = format!("demodulate round={round} symbol={s}");
            assert_bits_eq(&planned_sym, &reference_sym, &ctx);
            assert_bits_eq(
                &packet[s * DATA_CARRIERS..(s + 1) * DATA_CARRIERS],
                &reference_sym,
                &format!("{ctx} (packet form)"),
            );
            assert_eq!(
                planned_demod.last_pilot_phase().to_bits(),
                reference_demod.last_pilot_phase().to_bits(),
                "{ctx}: pilot phase"
            );
        }
        assert_eq!(
            packet_demod.last_pilot_phase().to_bits(),
            reference_demod.last_pilot_phase().to_bits(),
            "round={round}: packet-form pilot phase"
        );
    }
}

/// The Gray-map lookup table reproduces the interpreted mapper on every
/// bit pattern of every modulation — exhaustively, since the input space
/// is only 2^bits_per_symbol.
#[test]
fn table_mapper_matches_reference_exhaustively() {
    for m in MODULATIONS {
        let mapper = Mapper::new(m);
        let bps = m.bits_per_symbol();
        let mut planned = Vec::new();
        let mut reference = Vec::new();
        for v in 0..1usize << bps {
            let bits: Vec<u8> = (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect();
            mapper.map_into(&bits, &mut planned);
            mapper.map_into_reference(&bits, &mut reference);
            assert_bits_eq(&planned, &reference, &format!("{m} pattern {v:06b}"));
        }
    }
}

/// Multi-symbol bit streams through `map_append` equal the reference
/// chunk loop (the whole-packet TX streaming shape).
#[test]
fn map_append_streams_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0005);
    for m in MODULATIONS {
        let mapper = Mapper::new(m);
        let bps = m.bits_per_symbol();
        let bits: Vec<u8> = (0..bps * 257).map(|_| rng.gen_bit()).collect();
        let mut planned = Vec::new();
        for chunk in bits.chunks(bps * 16) {
            mapper.map_append(chunk, &mut planned);
        }
        let mut reference = Vec::new();
        mapper.map_into_reference(&bits, &mut reference);
        assert_bits_eq(&planned, &reference, &format!("{m} stream"));
    }
}

/// Interlaces per-lane streams into the lane-major layout the batch
/// kernels consume.
fn interleave_lanes<T: Copy>(lanes: &[Vec<T>]) -> Vec<T> {
    let n = lanes.len();
    let len = lanes[0].len();
    assert!(lanes.iter().all(|l| l.len() == len));
    let mut soa = Vec::with_capacity(n * len);
    for i in 0..len {
        for lane in lanes {
            soa.push(lane[i]);
        }
    }
    soa
}

/// The lockstep OFDM demodulator reproduces the scalar packet path bit
/// for bit in every lane, for every lane count the engine dispatches.
#[test]
fn batched_ofdm_demodulator_matches_scalar_per_lane() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0007);
    for &lanes in &[1usize, 2, 3, 5, 8] {
        let n_sym = 1 + rng.gen_i64(0, 7) as usize;
        let lane_samples: Vec<Vec<Cplx>> = (0..lanes)
            .map(|_| {
                (0..n_sym * SYMBOL_LEN)
                    .map(|_| random_cplx(&mut rng, 2.0))
                    .collect()
            })
            .collect();
        let refs: Vec<&[Cplx]> = lane_samples.iter().map(|v| v.as_slice()).collect();

        let mut batch_demod = OfdmDemodulator::new();
        let mut batch = Vec::new();
        batch_demod.demodulate_packet_batch_into(&refs, &mut batch);
        assert_eq!(batch.len(), n_sym * DATA_CARRIERS * lanes);

        for (l, lane) in lane_samples.iter().enumerate() {
            let mut solo_demod = OfdmDemodulator::new();
            let mut solo = Vec::new();
            solo_demod.demodulate_packet_into(lane, &mut solo);
            let gathered: Vec<Cplx> = batch.chunks_exact(lanes).map(|row| row[l]).collect();
            assert_bits_eq(&gathered, &solo, &format!("lanes={lanes} lane={l}"));
        }
    }
}

/// The lane-major demap kernels reproduce the scalar kernels bit for bit
/// in every lane, for every modulation.
#[test]
fn batched_demap_matches_scalar_per_lane() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0008);
    for m in MODULATIONS {
        let d = Demapper::new(m, 5, SnrScaling::Off);
        for &lanes in &[1usize, 4, 7] {
            let lane_syms: Vec<Vec<Cplx>> = (0..lanes)
                .map(|_| (0..96).map(|_| random_cplx(&mut rng, 2.0)).collect())
                .collect();
            let soa = interleave_lanes(&lane_syms);
            let mut batch = Vec::new();
            d.demap_batch_into(&soa, lanes, &mut batch);
            for (l, lane) in lane_syms.iter().enumerate() {
                let mut solo = Vec::new();
                d.demap_into(lane, &mut solo);
                let gathered: Vec<_> = batch.chunks_exact(lanes).map(|row| row[l]).collect();
                assert_eq!(gathered, solo, "{m} lanes={lanes} lane={l}");
            }
        }
    }
}

/// The lane-major mapper reproduces the scalar table lookup bit for bit
/// in every lane.
#[test]
fn batched_map_matches_scalar_per_lane() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0009);
    for m in MODULATIONS {
        let mapper = Mapper::new(m);
        let bps = m.bits_per_symbol();
        for &lanes in &[1usize, 2, 6] {
            let lane_bits: Vec<Vec<u8>> = (0..lanes)
                .map(|_| (0..bps * 33).map(|_| rng.gen_bit()).collect())
                .collect();
            let refs: Vec<&[u8]> = lane_bits.iter().map(|v| v.as_slice()).collect();
            let mut batch = Vec::new();
            mapper.map_batch_append(&refs, &mut batch);
            for (l, lane) in lane_bits.iter().enumerate() {
                let solo = mapper.map(lane);
                let gathered: Vec<Cplx> = batch.chunks_exact(lanes).map(|row| row[l]).collect();
                assert_bits_eq(&gathered, &solo, &format!("{m} lanes={lanes} lane={l}"));
            }
        }
    }
}

/// The full batched receive pipeline — lockstep OFDM, demap,
/// deinterleave, depuncture, and the structure-of-arrays decoders —
/// reproduces the scalar [`Receiver::rx_from`] bit for bit in every lane:
/// payloads, hints, and soft magnitudes, across rates, decoders, and
/// every dispatched lane count (9 exercises the beyond-`MAX_LANES`
/// per-lane fallback).
#[test]
fn batched_rx_pipeline_matches_scalar_per_lane() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_000A);
    for rate in [
        PhyRate::BpskHalf,
        PhyRate::Qam16Half,
        PhyRate::Qam64TwoThirds,
    ] {
        for make_rx in [
            Receiver::viterbi as fn(PhyRate) -> Receiver,
            Receiver::sova,
            Receiver::bcjr,
        ] {
            for &lanes in &[1usize, 2, 4, 8, 9] {
                let payload_bits = 3 + rng.gen_i64(0, 400) as usize;
                // Per-lane payloads, seeds, and noise all differ; the
                // noise is strong enough to flip decisions in some lanes.
                let mut lane_samples: Vec<Vec<Cplx>> = Vec::with_capacity(lanes);
                let mut seeds: Vec<u8> = Vec::with_capacity(lanes);
                let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(lanes);
                for l in 0..lanes {
                    let payload: Vec<u8> = (0..payload_bits).map(|_| rng.gen_bit()).collect();
                    let seed = (l % 127 + 1) as u8;
                    let tx = Transmitter::new(rate).transmit(&payload, seed);
                    let mut samples = tx.samples;
                    for s in samples.iter_mut() {
                        *s += random_cplx(&mut rng, 0.4);
                    }
                    lane_samples.push(samples);
                    seeds.push(seed);
                    payloads.push(payload);
                }
                let refs: Vec<&[Cplx]> = lane_samples.iter().map(|v| v.as_slice()).collect();

                let mut batch_rx = make_rx(rate);
                let mut scratch = PhyScratch::new();
                let mut outs: Vec<RxResult> = vec![RxResult::default(); lanes];
                batch_rx.rx_batch_from(&refs, payload_bits, &seeds, &mut scratch, &mut outs);

                let mut solo_rx = make_rx(rate);
                let mut solo_scratch = PhyScratch::new();
                let mut solo = RxResult::default();
                for l in 0..lanes {
                    solo_rx.rx_from(
                        &lane_samples[l],
                        payload_bits,
                        seeds[l],
                        &mut solo_scratch,
                        &mut solo,
                    );
                    let ctx = format!("{rate} {} lanes={lanes} lane={l}", solo.decoder_id);
                    assert_eq!(outs[l].payload, solo.payload, "{ctx}: payload");
                    assert_eq!(outs[l].hints, solo.hints, "{ctx}: hints");
                    assert_eq!(
                        outs[l].soft_magnitudes, solo.soft_magnitudes,
                        "{ctx}: soft magnitudes"
                    );
                    assert_eq!(outs[l].decoder_id, solo.decoder_id, "{ctx}: decoder id");
                }
            }
        }
    }
}

/// The specialized demap kernels reproduce the interpreted reference for
/// every modulation, output width, and scaling mode, on noisy symbols
/// spanning clean points, boundary cases, and saturating outliers.
#[test]
fn specialized_demap_kernels_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0x0FD1_0006);
    let scalings = [
        SnrScaling::Off,
        SnrScaling::ConstantLinear(4.0),
        SnrScaling::TrueLinear(12.5),
    ];
    for m in MODULATIONS {
        for bits in [3u32, 5, 8, 12, 28] {
            for scaling in scalings {
                let d = Demapper::new(m, bits, scaling);
                let mut symbols: Vec<Cplx> = (0..512).map(|_| random_cplx(&mut rng, 2.0)).collect();
                // Exact constellation points and outliers join the noise.
                let mapper = Mapper::new(m);
                let bps = m.bits_per_symbol();
                for v in 0..1usize << bps {
                    let pat: Vec<u8> = (0..bps).map(|j| ((v >> (bps - 1 - j)) & 1) as u8).collect();
                    symbols.extend(mapper.map(&pat));
                }
                symbols.push(Cplx::new(100.0, -100.0));
                symbols.push(Cplx::new(-0.0, 0.0));

                let mut planned = Vec::new();
                let mut reference = Vec::new();
                d.demap_into(&symbols, &mut planned);
                d.demap_into_reference(&symbols, &mut reference);
                assert_eq!(planned, reference, "{m} bits={bits} scaling={scaling:?}");
            }
        }
    }
}
