//! Radix-2 FFT, written from scratch (no external DSP dependency).
//!
//! This is the **frozen reference recurrence**: [`crate::FftPlan`] caches
//! the twiddles this transform computes per call (same `w *= wlen`
//! recurrence, same rounding) and the planned [`crate::fft_with`] /
//! [`crate::ifft_with`] must stay bit-identical to these functions. Do
//! not optimize this module; its value is that it does not change.

use std::f64::consts::PI;

use wilis_fxp::Cplx;

/// In-place iterative radix-2 Cooley–Tukey with the given twiddle sign.
fn transform(data: &mut [Cplx], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Cplx::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT (no normalization): `X[k] = Σ x[n] e^(−j2πkn/N)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
///
/// # Example
///
/// ```
/// use wilis_fxp::Cplx;
/// use wilis_phy::{fft, ifft};
///
/// let mut x = vec![Cplx::ZERO; 64];
/// x[3] = Cplx::ONE; // a pure tone in frequency becomes one after roundtrip
/// let mut t = x.clone();
/// ifft(&mut t);
/// fft(&mut t);
/// for (a, b) in x.iter().zip(&t) {
///     assert!((*a - *b).norm() < 1e-12);
/// }
/// ```
pub fn fft(data: &mut [Cplx]) {
    transform(data, -1.0);
}

/// Inverse DFT with `1/N` normalization: `x[n] = (1/N) Σ X[k] e^(+j2πkn/N)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft(data: &mut [Cplx]) {
    transform(data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for v in data {
        *v = v.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Cplx], b: &[Cplx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).norm() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn impulse_is_flat_spectrum() {
        let mut x = vec![Cplx::ZERO; 64];
        x[0] = Cplx::ONE;
        fft(&mut x);
        assert_close(&x, &vec![Cplx::ONE; 64], 1e-12);
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Cplx> = (0..n)
            .map(|t| Cplx::from_polar(1.0, 2.0 * PI * k as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (bin, v) in x.iter().enumerate() {
            if bin == k {
                assert!((v.re - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {bin}: {v}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Cplx> = (0..128)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        assert_close(&x, &y, 1e-10);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Cplx> = (0..64)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let a: Vec<Cplx> = (0..32).map(|i| Cplx::new(i as f64, -(i as f64))).collect();
        let b: Vec<Cplx> = (0..32).map(|i| Cplx::new(1.0, i as f64 * 0.5)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum;
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fsum);
        let combined: Vec<Cplx> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fsum, &combined, 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Cplx::ZERO; 48];
        fft(&mut x);
    }
}
