//! PPDU framing: field layout, scrambling, padding and termination.
//!
//! Layout note: 802.11a orders the DATA field `SERVICE | PSDU | TAIL |
//! PAD`. We place the pad *before* the tail (`SERVICE | PSDU | PAD |
//! TAIL`) so that the convolutional code of the whole field terminates in
//! state zero, which is the invariant the decoders' terminated mode needs.
//! The pad carries no information either way; the reordering is recorded
//! here and in DESIGN.md and has no effect on any reproduced experiment.

use crate::rate::PhyRate;
use crate::scrambler::Scrambler;

/// Number of SERVICE bits prepended to the payload (all zero; they give
/// the receiver's descrambler its reference).
pub const SERVICE_BITS: usize = 16;
/// Number of tail bits that flush the convolutional encoder.
pub const TAIL_BITS: usize = 6;

/// The computed layout of one packet's DATA field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFields {
    /// PHY rate the packet is sent at.
    pub rate: PhyRate,
    /// Payload (PSDU) length in bits.
    pub payload_bits: usize,
    /// Pad bits inserted to fill the last OFDM symbol.
    pub pad_bits: usize,
    /// OFDM symbols in the DATA portion.
    pub n_symbols: usize,
}

impl PacketFields {
    /// Computes the layout for a payload of `payload_bits` at `rate`.
    pub fn for_payload(rate: PhyRate, payload_bits: usize) -> Self {
        let dbps = rate.data_bits_per_symbol();
        let raw = SERVICE_BITS + payload_bits + TAIL_BITS;
        let n_symbols = raw.div_ceil(dbps);
        let pad_bits = n_symbols * dbps - raw;
        Self {
            rate,
            payload_bits,
            pad_bits,
            n_symbols,
        }
    }

    /// Total data-field bits: service + payload + pad + tail.
    pub fn data_bits(&self) -> usize {
        SERVICE_BITS + self.payload_bits + self.pad_bits + TAIL_BITS
    }

    /// Scrambled bits (everything except the tail).
    pub fn scrambled_bits(&self) -> usize {
        self.data_bits() - TAIL_BITS
    }

    /// Coded (post-puncturing) bits across the whole packet.
    pub fn coded_bits(&self) -> usize {
        self.n_symbols * self.rate.coded_bits_per_symbol()
    }

    /// Air time of the DATA portion in seconds (4 µs per symbol).
    pub fn airtime_secs(&self) -> f64 {
        self.n_symbols as f64 * 4e-6
    }
}

/// Assembles the bit-level DATA field: service, payload, pad, scrambling,
/// and tail insertion.
///
/// # Example
///
/// ```
/// use wilis_phy::{PacketBuilder, PhyRate};
///
/// let builder = PacketBuilder::new(PhyRate::QpskHalf);
/// let payload = vec![1u8; 100];
/// let (bits, fields) = builder.assemble(&payload, 0x5D);
/// assert_eq!(bits.len(), fields.data_bits());
/// assert_eq!(fields.n_symbols, (16 + 100 + 6 + 47) / 48);
/// // The last six bits are the (unscrambled) tail.
/// assert!(bits[bits.len() - 6..].iter().all(|&b| b == 0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PacketBuilder {
    rate: PhyRate,
}

impl PacketBuilder {
    /// A builder for packets at `rate`.
    pub fn new(rate: PhyRate) -> Self {
        Self { rate }
    }

    /// Builds the scrambled DATA-field bits for `payload`, returning the
    /// bits and the computed layout.
    ///
    /// # Panics
    ///
    /// Panics if any payload value is not 0 or 1, or the scramble seed is
    /// invalid (see [`Scrambler::new`]).
    pub fn assemble(&self, payload: &[u8], scramble_seed: u8) -> (Vec<u8>, PacketFields) {
        let mut bits = Vec::new();
        let fields = self.assemble_into(payload, scramble_seed, &mut bits);
        (bits, fields)
    }

    /// Builds the scrambled DATA-field bits into `bits`, reusing its
    /// capacity (the allocation-free hot-path form), and returns the
    /// computed layout.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PacketBuilder::assemble`].
    pub fn assemble_into(
        &self,
        payload: &[u8],
        scramble_seed: u8,
        bits: &mut Vec<u8>,
    ) -> PacketFields {
        assert!(
            payload.iter().all(|&b| b < 2),
            "payload must be a bit slice"
        );
        let fields = PacketFields::for_payload(self.rate, payload.len());
        bits.clear();
        bits.reserve(fields.data_bits());
        bits.extend(std::iter::repeat(0u8).take(SERVICE_BITS));
        bits.extend_from_slice(payload);
        bits.extend(std::iter::repeat(0u8).take(fields.pad_bits));
        Scrambler::new(scramble_seed).scramble_in_place(bits);
        bits.extend(std::iter::repeat(0u8).take(TAIL_BITS));
        fields
    }

    /// Recovers the payload from decoded (still scrambled) data-field bits.
    ///
    /// # Panics
    ///
    /// Panics if `decoded.len()` does not match the layout's scrambled
    /// region (the decoder strips the tail already).
    pub fn disassemble(&self, decoded: &[u8], fields: &PacketFields, scramble_seed: u8) -> Vec<u8> {
        let mut payload = Vec::new();
        self.disassemble_into(decoded, fields, scramble_seed, &mut payload);
        payload
    }

    /// Recovers the payload into `payload`, reusing its capacity (the
    /// allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `decoded.len()` does not match the layout's scrambled
    /// region (the decoder strips the tail already).
    pub fn disassemble_into(
        &self,
        decoded: &[u8],
        fields: &PacketFields,
        scramble_seed: u8,
        payload: &mut Vec<u8>,
    ) {
        assert_eq!(
            decoded.len(),
            fields.scrambled_bits(),
            "decoded length mismatch"
        );
        // Descramble only what reaches the payload: the scrambler stream
        // must still be advanced over the SERVICE region to stay aligned.
        let mut scrambler = Scrambler::new(scramble_seed);
        payload.clear();
        payload.reserve(fields.payload_bits);
        for (i, &b) in decoded[..SERVICE_BITS + fields.payload_bits]
            .iter()
            .enumerate()
        {
            let clear = b ^ scrambler.next_bit();
            if i >= SERVICE_BITS {
                payload.push(clear);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_fills_symbols_exactly() {
        for rate in PhyRate::all() {
            for payload in [0usize, 1, 100, 1704, 12000] {
                let f = PacketFields::for_payload(rate, payload);
                assert_eq!(
                    f.data_bits() % rate.data_bits_per_symbol(),
                    0,
                    "{rate} payload {payload}"
                );
                assert!(f.pad_bits < rate.data_bits_per_symbol());
                assert_eq!(f.coded_bits(), f.n_symbols * rate.coded_bits_per_symbol());
            }
        }
    }

    #[test]
    fn paper_packet_size_1704_bits() {
        // Figure 6 uses 1704-bit packets at QAM-16 1/2 (96 data bits per
        // symbol): (16 + 1704 + 6) / 96 -> 18 symbols.
        let f = PacketFields::for_payload(PhyRate::Qam16Half, 1704);
        assert_eq!(f.n_symbols, 18);
        assert_eq!(f.airtime_secs(), 18.0 * 4e-6);
    }

    #[test]
    fn assemble_disassemble_roundtrip() {
        let b = PacketBuilder::new(PhyRate::Qam16Half);
        let payload: Vec<u8> = (0..777).map(|i| ((i * 13) % 2) as u8).collect();
        let (bits, fields) = b.assemble(&payload, 0x2A);
        // Simulate a perfect decode: strip the tail, descramble.
        let decoded = &bits[..bits.len() - TAIL_BITS];
        let back = b.disassemble(decoded, &fields, 0x2A);
        assert_eq!(back, payload);
    }

    #[test]
    fn tail_bits_are_zero_and_unscrambled() {
        let b = PacketBuilder::new(PhyRate::BpskHalf);
        let (bits, _) = b.assemble(&[1, 0, 1], 0x7F);
        assert!(bits[bits.len() - TAIL_BITS..].iter().all(|&x| x == 0));
    }

    #[test]
    fn different_seeds_scramble_differently() {
        let b = PacketBuilder::new(PhyRate::BpskHalf);
        let payload = vec![0u8; 64];
        let (a, _) = b.assemble(&payload, 0x01);
        let (c, _) = b.assemble(&payload, 0x55);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "bit slice")]
    fn byte_payload_rejected() {
        let b = PacketBuilder::new(PhyRate::BpskHalf);
        let _ = b.assemble(&[0xFF], 1);
    }
}
