//! The 802.11 frame-synchronous scrambler, `x^7 + x^4 + 1`.
//!
//! Scrambling whitens the payload so the interleaver and constellation see
//! balanced bit statistics ("avoidance of bursty errors by shuffling bits"
//! is the interleaver's job; the scrambler removes long runs). Descrambling
//! is the same XOR with the same initial state.

/// A 7-bit LFSR scrambler (802.11-2007 §17.3.5.4).
///
/// # Example
///
/// ```
/// use wilis_phy::Scrambler;
///
/// let data = vec![0u8, 1, 1, 0, 1, 0, 0, 1, 1, 1];
/// let scrambled = Scrambler::new(0x5D).scramble(&data);
/// let recovered = Scrambler::new(0x5D).scramble(&scrambled);
/// assert_eq!(recovered, data);
/// assert_ne!(scrambled, data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// A scrambler with the given 7-bit initial state.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (an all-zero LFSR never advances) or wider
    /// than 7 bits.
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0, "all-zero scrambler state is degenerate");
        assert!(seed < 0x80, "scrambler state is 7 bits");
        Self { state: seed }
    }

    /// Produces the next bit of the scrambling sequence.
    pub fn next_bit(&mut self) -> u8 {
        // Feedback: x^7 + x^4 + 1 — XOR of bit 6 and bit 3.
        let fb = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | fb) & 0x7F;
        fb
    }

    /// XORs `bits` with the scrambling sequence (involution: applying it
    /// twice with the same seed recovers the input).
    pub fn scramble(mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| b ^ self.next_bit()).collect()
    }

    /// Scrambles in place, advancing the internal state (streaming form).
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        for b in bits {
            *b ^= self.next_bit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_has_period_127() {
        let mut s = Scrambler::new(1);
        let seq: Vec<u8> = (0..254).map(|_| s.next_bit()).collect();
        assert_eq!(&seq[..127], &seq[127..], "maximal-length LFSR period");
        // And within a period it is not constant.
        assert!(seq[..127].contains(&1));
        assert!(seq[..127].contains(&0));
    }

    #[test]
    fn known_80211_prefix() {
        // IEEE 802.11-2007 17.3.5.4: with all-ones initial state the first
        // 16 output bits are 0000 1110 1111 0010 (transmission order).
        let mut s = Scrambler::new(0x7F);
        let seq: Vec<u8> = (0..16).map(|_| s.next_bit()).collect();
        assert_eq!(seq, vec![0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn involution_for_any_seed() {
        let data: Vec<u8> = (0..200).map(|i| (i % 3 == 0) as u8).collect();
        for seed in [1u8, 0x2A, 0x5D, 0x7F] {
            let once = Scrambler::new(seed).scramble(&data);
            let twice = Scrambler::new(seed).scramble(&once);
            assert_eq!(twice, data, "seed {seed:#x}");
        }
    }

    #[test]
    fn balances_bit_statistics() {
        let zeros = vec![0u8; 127];
        let scrambled = Scrambler::new(0x11).scramble(&zeros);
        let ones = scrambled.iter().filter(|&&b| b == 1).count();
        // A maximal-length sequence has 64 ones per 127-bit period.
        assert_eq!(ones, 64);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_seed_rejected() {
        let _ = Scrambler::new(0);
    }

    #[test]
    fn streaming_matches_block() {
        let data: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        let block = Scrambler::new(0x33).scramble(&data);
        let mut streaming = Scrambler::new(0x33);
        let mut buf = data.clone();
        streaming.scramble_in_place(&mut buf[..20]);
        streaming.scramble_in_place(&mut buf[20..]);
        assert_eq!(buf, block);
    }
}
