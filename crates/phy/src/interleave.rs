//! The 802.11a two-permutation block interleaver (per OFDM symbol).
//!
//! This is the paper's "avoidance of bursty errors by shuffling bits" (§1):
//! the first permutation spreads adjacent coded bits across non-adjacent
//! subcarriers; the second alternates them between more- and
//! less-significant constellation bit positions so that runs of low
//! reliability do not land on one codeword neighborhood.

use wilis_fec::Llr;

use crate::rate::PhyRate;

fn permutation(rate: PhyRate) -> Vec<usize> {
    let n_cbps = rate.coded_bits_per_symbol();
    let bpsc = rate.modulation().bits_per_symbol();
    let s = (bpsc / 2).max(1);
    (0..n_cbps)
        .map(|k| {
            // IEEE 802.11-2007 §17.3.5.6, interleaver permutations.
            let i = (n_cbps / 16) * (k % 16) + k / 16;
            (s * (i / s)) + (i + n_cbps - (16 * i / n_cbps)) % s
        })
        .collect()
}

/// Interleaves the coded bits of one OFDM symbol.
///
/// # Example
///
/// ```
/// use wilis_phy::{Deinterleaver, Interleaver, PhyRate};
///
/// let rate = PhyRate::Qam16Half;
/// let bits: Vec<u8> = (0..rate.coded_bits_per_symbol()).map(|i| (i % 2) as u8).collect();
/// let tx = Interleaver::new(rate).interleave(&bits);
/// let llrs: Vec<i32> = tx.iter().map(|&b| if b == 1 { 3 } else { -3 }).collect();
/// let rx = Deinterleaver::new(rate).deinterleave(&llrs);
/// for (orig, soft) in bits.iter().zip(&rx) {
///     assert_eq!(*orig == 1, *soft > 0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Interleaver {
    rate: PhyRate,
    /// `perm[k]` = position after interleaving of input bit `k`.
    perm: Vec<usize>,
}

impl Interleaver {
    /// An interleaver for one symbol of `rate`.
    pub fn new(rate: PhyRate) -> Self {
        Self {
            rate,
            perm: permutation(rate),
        }
    }

    /// Permutes exactly one symbol's worth of coded bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not the rate's coded bits per symbol.
    pub fn interleave<T: Copy + Default>(&self, bits: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.interleave_into(bits, &mut out);
        out
    }

    /// Permutes one symbol's worth of coded bits into `out`, reusing its
    /// capacity (the allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not the rate's coded bits per symbol.
    pub fn interleave_into<T: Copy + Default>(&self, bits: &[T], out: &mut Vec<T>) {
        assert_eq!(
            bits.len(),
            self.rate.coded_bits_per_symbol(),
            "interleaver operates on exactly one OFDM symbol"
        );
        out.clear();
        out.resize(bits.len(), T::default());
        for (k, &b) in bits.iter().enumerate() {
            out[self.perm[k]] = b;
        }
    }
}

/// Inverts the per-symbol interleaver (operating on soft values at the
/// receiver).
#[derive(Debug, Clone)]
pub struct Deinterleaver {
    rate: PhyRate,
    perm: Vec<usize>,
}

impl Deinterleaver {
    /// A deinterleaver for one symbol of `rate`.
    pub fn new(rate: PhyRate) -> Self {
        Self {
            rate,
            perm: permutation(rate),
        }
    }

    /// Restores transmission order for one symbol of soft values.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not the rate's coded bits per symbol.
    pub fn deinterleave(&self, llrs: &[Llr]) -> Vec<Llr> {
        let mut out = Vec::new();
        self.deinterleave_append(llrs, &mut out);
        out
    }

    /// Restores transmission order for one symbol of soft values,
    /// *appending* to `out` — packets deinterleave symbol by symbol into
    /// one stream, so the hot path accumulates rather than replaces.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not the rate's coded bits per symbol.
    pub fn deinterleave_append(&self, llrs: &[Llr], out: &mut Vec<Llr>) {
        assert_eq!(
            llrs.len(),
            self.rate.coded_bits_per_symbol(),
            "deinterleaver operates on exactly one OFDM symbol"
        );
        out.reserve(llrs.len());
        for &p in self.perm.iter() {
            out.push(llrs[p]);
        }
    }

    /// Restores transmission order for a whole packet of soft values in
    /// one call: the packet-level form of [`Deinterleaver::deinterleave_append`]
    /// that walks every per-symbol window itself, so receive paths reserve
    /// once and gather straight through instead of re-entering per symbol.
    /// Element for element this produces exactly the symbol-by-symbol
    /// accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len()` is not a whole number of symbols.
    pub fn deinterleave_packet_into(&self, llrs: &[Llr], out: &mut Vec<Llr>) {
        let cbps = self.rate.coded_bits_per_symbol();
        assert_eq!(
            llrs.len() % cbps,
            0,
            "deinterleaver operates on whole OFDM symbols"
        );
        out.clear();
        out.reserve(llrs.len());
        for sym in llrs.chunks_exact(cbps) {
            for &p in self.perm.iter() {
                out.push(sym[p]);
            }
        }
    }

    /// The lane-major lockstep form of
    /// [`Deinterleaver::deinterleave_packet_into`]: `llrs` interlaces
    /// `lanes` equal-length packet streams (soft bit `i` of lane `l` at
    /// `llrs[i * lanes + l]`), and the output keeps the same interlacing.
    /// The permutation is position-driven, so all lanes share each gather
    /// index and whole lane rows move at once — per lane this is exactly
    /// the scalar packet deinterleave.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `llrs.len()` is not a whole number of
    /// symbols times `lanes`.
    pub fn deinterleave_packet_lanes_into(&self, llrs: &[Llr], lanes: usize, out: &mut Vec<Llr>) {
        assert!(lanes > 0, "at least one lane");
        let cbps = self.rate.coded_bits_per_symbol();
        assert_eq!(
            llrs.len() % (cbps * lanes),
            0,
            "deinterleaver operates on whole OFDM symbols in every lane"
        );
        out.clear();
        out.reserve(llrs.len());
        for sym in llrs.chunks_exact(cbps * lanes) {
            for &p in self.perm.iter() {
                out.extend_from_slice(&sym[p * lanes..(p + 1) * lanes]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective_for_all_rates() {
        for rate in PhyRate::all() {
            let perm = permutation(rate);
            let mut seen = vec![false; perm.len()];
            for &p in &perm {
                assert!(!seen[p], "{rate}: position {p} hit twice");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn roundtrip_identity_for_all_rates() {
        for rate in PhyRate::all() {
            let n = rate.coded_bits_per_symbol();
            let bits: Vec<u8> = (0..n).map(|i| ((i * 31 + 7) % 2) as u8).collect();
            let inter = Interleaver::new(rate).interleave(&bits);
            let llrs: Vec<Llr> = inter.iter().map(|&b| if b == 1 { 1 } else { -1 }).collect();
            let deinter = Deinterleaver::new(rate).deinterleave(&llrs);
            let recovered: Vec<u8> = deinter.iter().map(|&l| u8::from(l > 0)).collect();
            assert_eq!(recovered, bits, "{rate}");
        }
    }

    #[test]
    fn packet_forms_match_symbol_accumulation() {
        for rate in PhyRate::all() {
            let cbps = rate.coded_bits_per_symbol();
            let n_sym = 5;
            let llrs: Vec<Llr> = (0..n_sym * cbps).map(|i| i as Llr - 37).collect();
            let d = Deinterleaver::new(rate);
            let mut symbolwise = Vec::new();
            for sym in llrs.chunks_exact(cbps) {
                d.deinterleave_append(sym, &mut symbolwise);
            }
            let mut packet = Vec::new();
            d.deinterleave_packet_into(&llrs, &mut packet);
            assert_eq!(packet, symbolwise, "{rate}: packet form");

            for lanes in [1usize, 3, 8] {
                // Interlace `lanes` shifted copies, deinterleave in
                // lockstep, and expect each lane to match its solo run.
                let mut soa = Vec::with_capacity(llrs.len() * lanes);
                for &v in &llrs {
                    for l in 0..lanes {
                        soa.push(v + 1000 * l as Llr);
                    }
                }
                let mut got = Vec::new();
                d.deinterleave_packet_lanes_into(&soa, lanes, &mut got);
                for l in 0..lanes {
                    let gathered: Vec<Llr> = got.chunks_exact(lanes).map(|row| row[l]).collect();
                    let solo: Vec<Llr> = symbolwise.iter().map(|&v| v + 1000 * l as Llr).collect();
                    assert_eq!(gathered, solo, "{rate}: lane {l} of {lanes}");
                }
            }
        }
    }

    #[test]
    fn adjacent_bits_spread_apart() {
        // The point of the first permutation: adjacent coded bits map to
        // distant interleaved positions (different subcarriers).
        let rate = PhyRate::Qam16Half;
        let perm = permutation(rate);
        let min_gap = perm
            .windows(2)
            .map(|w| (w[1] as i64 - w[0] as i64).unsigned_abs())
            .min()
            .unwrap();
        assert!(min_gap >= 4, "adjacent coded bits too close: gap {min_gap}");
    }

    #[test]
    fn known_bpsk_mapping() {
        // For BPSK (s=1) the second permutation is the identity, so
        // perm[k] = (NCBPS/16)(k mod 16) + floor(k/16) = 3*(k%16) + k/16.
        let perm = permutation(PhyRate::BpskHalf);
        for (k, &p) in perm.iter().enumerate() {
            assert_eq!(p, 3 * (k % 16) + k / 16);
        }
    }

    #[test]
    #[should_panic(expected = "exactly one OFDM symbol")]
    fn wrong_length_panics() {
        let _ = Interleaver::new(PhyRate::BpskHalf).interleave(&[0u8; 10]);
    }
}
