//! Fixed-point FFT — the arithmetic the hardware IFFT/FFT actually runs.
//!
//! The float FFT in [`crate::fft`] is the *reference model*; real baseband
//! pipelines compute the transform in fixed point with scaling between
//! stages to prevent overflow (a hardware "block floating point" of the
//! simplest kind: divide by two at every butterfly stage, which also
//! builds in the 1/N of the inverse transform). This module models that
//! datapath so the quantization it injects flows into the demapper and
//! decoders, the whole-pipeline effect the paper's methodology exists to
//! capture (§1).

use std::f64::consts::PI;

use wilis_fxp::{CFixed, Cplx, QFormat, Rounding};

/// Fixed-point radix-2 transform with per-stage halving.
///
/// Every butterfly output is divided by two (arithmetic shift), so the
/// result of the `log2(N)`-stage pipeline carries an overall `1/N` factor
/// and can never overflow the input format. Twiddle factors are quantized
/// into the same format.
fn transform_fixed(data: &mut [CFixed], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    assert!(!data.is_empty(), "empty transform");
    let fmt = data[0].format();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Arithmetic halving with round-to-nearest: the hardware's one-bit
    // downshift between butterfly stages.
    let half = |v: CFixed| -> CFixed {
        CFixed::from_f64(
            v.re().to_f64() / 2.0,
            v.im().to_f64() / 2.0,
            fmt,
            Rounding::Nearest,
        )
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let w = CFixed::from_f64(
                    (ang * k as f64).cos(),
                    (ang * k as f64).sin(),
                    fmt,
                    Rounding::Nearest,
                );
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = half(a + b);
                data[start + k + len / 2] = half(a - b);
            }
        }
        len <<= 1;
    }
}

/// Forward fixed-point DFT with built-in `1/N` scaling.
///
/// # Panics
///
/// Panics if the length is not a power of two or the slice is empty.
///
/// # Example
///
/// ```
/// use wilis_fxp::{CFixed, QFormat, Rounding};
/// use wilis_phy::fft_fixed::{fft_fixed, ifft_fixed};
///
/// let fmt = QFormat::new(4, 10)?;
/// let mut data: Vec<CFixed> = (0..64)
///     .map(|i| CFixed::from_f64(((i as f64) * 0.3).sin() * 0.5, 0.0, fmt, Rounding::Nearest))
///     .collect();
/// let original = data.clone();
/// fft_fixed(&mut data);
/// ifft_fixed(&mut data);
/// // Round trip holds to within the accumulated quantization noise, but
/// // ifft_fixed's stage scaling divides by N: compare against original/N.
/// for (a, b) in original.iter().zip(&data) {
///     let expect = a.re().to_f64() / 64.0;
///     assert!((b.re().to_f64() - expect).abs() < 0.02);
/// }
/// # Ok::<(), wilis_fxp::FormatError>(())
/// ```
pub fn fft_fixed(data: &mut [CFixed]) {
    transform_fixed(data, -1.0);
}

/// Inverse fixed-point DFT with built-in `1/N` scaling.
///
/// # Panics
///
/// Panics if the length is not a power of two or the slice is empty.
pub fn ifft_fixed(data: &mut [CFixed]) {
    transform_fixed(data, 1.0);
}

/// Measures the quantization SNR of the fixed-point forward transform
/// against the float reference on the given input, in dB. Used by tests
/// and the bit-width ablation to size the hardware FFT format.
pub fn transform_snr_db(input: &[Cplx], fmt: QFormat) -> f64 {
    let mut reference: Vec<Cplx> = input.to_vec();
    crate::fft::fft(&mut reference);
    let n = input.len() as f64;

    let mut fixed: Vec<CFixed> = input
        .iter()
        .map(|c| CFixed::from_f64(c.re, c.im, fmt, Rounding::Nearest))
        .collect();
    fft_fixed(&mut fixed);

    // The fixed path divides by N; rescale the reference to match.
    let mut signal = 0.0;
    let mut noise = 0.0;
    for (r, f) in reference.iter().zip(&fixed) {
        let want = r.scale(1.0 / n);
        let (fre, fim) = f.to_f64();
        signal += want.norm_sq();
        noise += (want - Cplx::new(fre, fim)).norm_sq();
    }
    10.0 * (signal / noise.max(1e-30)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(frac: u32) -> QFormat {
        QFormat::new(4, frac).unwrap()
    }

    fn tone(n: usize, k: usize) -> Vec<Cplx> {
        (0..n)
            .map(|t| Cplx::from_polar(0.5, 2.0 * PI * k as f64 * t as f64 / n as f64))
            .collect()
    }

    #[test]
    fn single_tone_lands_on_the_right_bin() {
        let input = tone(64, 5);
        let mut fixed: Vec<CFixed> = input
            .iter()
            .map(|c| CFixed::from_f64(c.re, c.im, fmt(12), Rounding::Nearest))
            .collect();
        fft_fixed(&mut fixed);
        // Peak magnitude should be at bin 5 (value ~0.5 after 1/N scaling).
        let mags: Vec<f64> = fixed
            .iter()
            .map(|c| {
                let (re, im) = c.to_f64();
                Cplx::new(re, im).norm()
            })
            .collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
        assert!((mags[5] - 0.5).abs() < 0.05, "peak magnitude {}", mags[5]);
    }

    #[test]
    fn quantization_snr_grows_with_width() {
        let input = tone(64, 9);
        let snr8 = transform_snr_db(&input, fmt(8));
        let snr12 = transform_snr_db(&input, fmt(12));
        let snr16 = transform_snr_db(&input, fmt(16));
        assert!(snr8 < snr12 && snr12 < snr16, "{snr8} {snr12} {snr16}");
        // ~6 dB per bit, minus butterfly accumulation losses.
        assert!(snr12 - snr8 > 12.0, "got {}", snr12 - snr8);
    }

    #[test]
    fn sixteen_fraction_bits_are_transparent_for_ofdm() {
        // At Q4.16 the FFT's quantization noise sits far below the channel
        // noise of every operating point in the paper (>60 dB SNR).
        let input = tone(64, 3);
        assert!(transform_snr_db(&input, fmt(16)) > 60.0);
    }

    #[test]
    fn never_overflows_regardless_of_input() {
        // Per-stage halving guarantees containment: full-scale inputs,
        // worst-case phases.
        let f = fmt(10);
        let mut data: Vec<CFixed> = (0..64)
            .map(|i| {
                CFixed::from_f64(
                    if i % 2 == 0 { 15.9 } else { -15.9 },
                    if i % 3 == 0 { 15.9 } else { -15.9 },
                    f,
                    Rounding::Nearest,
                )
            })
            .collect();
        fft_fixed(&mut data);
        for c in &data {
            let (re, im) = c.to_f64();
            assert!(re.abs() <= f.max_f64() && im.abs() <= f.max_f64());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let f = fmt(8);
        let mut data = vec![CFixed::zero(f); 48];
        fft_fixed(&mut data);
    }
}
