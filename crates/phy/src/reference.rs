//! The frozen PHY front-end reference paths.
//!
//! These are the pre-plan bodies of the OFDM modulator/demodulator, the
//! Gray mapper, and the soft demapper — the interpreted per-symbol loops
//! that recompute twiddles by recurrence, walk the subcarrier filter
//! iterator with a modulo per carrier, and branch on the modulation per
//! point. They are preserved verbatim (modulo two output-invariant
//! cleanups: the per-symbol `clear`/`resize` buffer wipe became a fixed
//! 64-slot buffer reuse, and the pilots' `atan2` moved behind the lazy
//! `last_pilot_phase` accessor) for the same three jobs
//! `wilis_fec::reference` serves for the trellis kernels:
//!
//! 1. **Differential oracle** — the equivalence suites
//!    (`crates/phy/src/equiv_tests.rs`, `tests/phy_frontend_equiv.rs`)
//!    assert the planned kernels reproduce these outputs bit for bit, on
//!    every modulation and all eight `PhyRate`s.
//! 2. **Perf baseline** — the `perf_phy` bench times this path as the
//!    "pre" side of the recorded front-end speedup.
//! 3. **Spec readability** — the reference bodies still read like the
//!    802.11 clauses they implement, while the planned kernels read like
//!    table walks.
//!
//! Do not optimize this module; its value is that it does not change.

use wilis_fec::Llr;
use wilis_fxp::Cplx;

use crate::demapper::Demapper;
use crate::fft::{fft, ifft};
use crate::mapper::{gray_axis, Mapper, Modulation};
use crate::ofdm::{
    bin_of, data_subcarriers, OfdmDemodulator, OfdmModulator, CP_LEN, DATA_CARRIERS, FFT_LEN,
    PILOT_BASE, PILOT_CARRIERS, SYMBOL_LEN,
};

impl OfdmModulator {
    /// The frozen pre-plan body of [`OfdmModulator::modulate_into`]:
    /// per-call subcarrier iterator, per-call scale computation, and the
    /// recurrence-driven [`ifft`]. Differential oracle and perf baseline
    /// for the planned path; outputs are bit-identical by contract.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != DATA_CARRIERS` or `out.len() != SYMBOL_LEN`.
    pub fn modulate_into_reference(&mut self, data: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(data.len(), DATA_CARRIERS, "one symbol of data carriers");
        assert_eq!(out.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let freq = &mut self.freq;
        freq.fill(Cplx::ZERO);
        for (value, k) in data.iter().zip(data_subcarriers()) {
            freq[bin_of(k)] = *value;
        }
        let p = self.polarity.next();
        for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
            freq[bin_of(k)] = Cplx::new(PILOT_BASE[i] * p, 0.0);
        }
        ifft(freq);
        // The IFFT's 1/N normalization spreads unit subcarrier energy
        // across N samples; rescale so average time-sample power equals
        // average subcarrier power (unit for unit-energy constellations).
        let scale = (FFT_LEN as f64 / (DATA_CARRIERS + PILOT_CARRIERS.len()) as f64).sqrt()
            * (FFT_LEN as f64).sqrt();
        for v in freq.iter_mut() {
            *v = v.scale(scale);
        }
        out[..CP_LEN].copy_from_slice(&freq[FFT_LEN - CP_LEN..]);
        out[CP_LEN..].copy_from_slice(freq);
    }
}

impl OfdmDemodulator {
    /// The frozen pre-plan body of [`OfdmDemodulator::demodulate_into`].
    /// Differential oracle and perf baseline for the planned path;
    /// outputs are bit-identical by contract.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != SYMBOL_LEN`.
    pub fn demodulate_into_reference(&mut self, samples: &[Cplx], out: &mut Vec<Cplx>) {
        assert_eq!(samples.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let freq = &mut self.freq;
        freq.copy_from_slice(&samples[CP_LEN..]);
        fft(freq);
        let scale = 1.0
            / ((FFT_LEN as f64 / (DATA_CARRIERS + PILOT_CARRIERS.len()) as f64).sqrt()
                * (FFT_LEN as f64).sqrt());
        let p = self.polarity.next();
        // Pilot-based common phase estimate (diagnostic only; no channel
        // estimation is applied, faithful to the paper's pipeline).
        let pilot_sum: Cplx = PILOT_CARRIERS
            .iter()
            .enumerate()
            .map(|(i, &k)| freq[bin_of(k)].scale(PILOT_BASE[i] * p))
            .sum();
        self.last_pilot_sum = pilot_sum;
        out.clear();
        out.extend(data_subcarriers().map(|k| freq[bin_of(k)].scale(scale)));
    }
}

impl Mapper {
    /// The frozen pre-table body of [`Mapper::map_into`]: the interpreted
    /// per-point Gray mapping. Differential oracle and perf baseline for
    /// the table-driven path; outputs are bit-identical by contract.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of `bits_per_symbol`.
    pub fn map_into_reference(&self, bits: &[u8], out: &mut Vec<Cplx>) {
        let modulation = self.modulation();
        let bps = modulation.bits_per_symbol();
        assert!(
            bits.len() % bps == 0,
            "bit count {} not a multiple of {bps}",
            bits.len()
        );
        let k = modulation.kmod();
        let per_axis = modulation.bits_per_axis();
        out.clear();
        out.reserve(bits.len() / bps);
        for chunk in bits.chunks(bps) {
            out.push(if modulation == Modulation::Bpsk {
                Cplx::new(gray_axis(&chunk[..1]) * k, 0.0)
            } else {
                let i = gray_axis(&chunk[..per_axis]) * k;
                let q = gray_axis(&chunk[per_axis..]) * k;
                Cplx::new(i, q)
            });
        }
    }
}

impl Demapper {
    /// The frozen pre-kernel body of [`Demapper::demap_into`]: the
    /// interpreted per-point modulation match with the branchy saturating
    /// quantizer. Differential oracle and perf baseline for the
    /// specialized kernels; outputs are bit-identical by contract.
    pub fn demap_into_reference(&self, symbols: &[Cplx], out: &mut Vec<Llr>) {
        out.clear();
        out.reserve(symbols.len() * self.modulation.bits_per_symbol());
        let inv_k = 1.0 / self.modulation.kmod();
        let factor = Self::scale_factor(self.modulation, self.scaling());
        for s in symbols {
            // Work in grid units: constellation points at odd integers.
            let ui = s.re * inv_k;
            let uq = s.im * inv_k;
            match self.modulation {
                Modulation::Bpsk => {
                    self.push_reference(out, ui * factor);
                }
                Modulation::Qpsk => {
                    self.push_reference(out, ui * factor);
                    self.push_reference(out, uq * factor);
                }
                Modulation::Qam16 => {
                    for u in [ui, uq] {
                        // Tosato–Bisaglia: Λ(b_high) = u, Λ(b_low) = 2 − |u|.
                        self.push_reference(out, u * factor);
                        self.push_reference(out, (2.0 - u.abs()) * factor);
                    }
                }
                Modulation::Qam64 => {
                    for u in [ui, uq] {
                        self.push_reference(out, u * factor);
                        self.push_reference(out, (4.0 - u.abs()) * factor);
                        self.push_reference(out, (2.0 - (u.abs() - 4.0).abs()) * factor);
                    }
                }
            }
        }
    }

    fn push_reference(&self, out: &mut Vec<Llr>, analog: f64) {
        let fs = self.full_scale();
        let q = (analog * self.gain).round();
        out.push(if q >= fs as f64 {
            fs
        } else if q <= -(fs as f64) {
            -fs
        } else {
            q as Llr
        });
    }
}
