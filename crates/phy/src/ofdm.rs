//! OFDM symbol assembly: 64-point FFT, 48 data + 4 pilot subcarriers,
//! 16-sample cyclic prefix (802.11-2007 §17.3.5.9).
//!
//! The per-symbol hot loops run against a shared [`OfdmPlan`]
//! (precomputed bin tables, cached twiddles, hoisted scale constants) and
//! are **bit-identical** to the frozen reference bodies in
//! [`crate::reference`], reachable as `*_into_reference` — the
//! differential oracle the equivalence suite decodes against.

use std::sync::Arc;

use wilis_fxp::Cplx;

use crate::plan::OfdmPlan;
use crate::scrambler::Scrambler;

/// FFT length (subcarrier count including guards and DC).
pub const FFT_LEN: usize = 64;
/// Cyclic-prefix length in samples.
pub const CP_LEN: usize = 16;
/// Total time-domain samples per OFDM symbol.
pub const SYMBOL_LEN: usize = FFT_LEN + CP_LEN;
/// Data subcarriers per symbol.
pub const DATA_CARRIERS: usize = 48;

/// Logical subcarrier indices (−26..=26 excluding 0 and pilots) of the 48
/// data carriers, in the order coded bits fill them.
///
/// The planned path never iterates this at runtime — [`OfdmPlan`] lowers
/// it to a flat bin table at construction; the frozen reference path
/// still walks it per symbol.
pub(crate) fn data_subcarriers() -> impl Iterator<Item = i32> {
    (-26..=26).filter(|&k| k != 0 && !PILOT_CARRIERS.contains(&k))
}

/// Pilot subcarrier positions.
pub(crate) const PILOT_CARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Base pilot polarities (before the per-symbol polarity sequence).
pub(crate) const PILOT_BASE: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

pub(crate) fn bin_of(k: i32) -> usize {
    ((k + FFT_LEN as i32) % FFT_LEN as i32) as usize
}

/// Per-symbol pilot polarity: the 127-periodic scrambler sequence with
/// all-ones seed, mapped 0 → +1, 1 → −1 (802.11-2007 §17.3.5.9).
#[derive(Debug, Clone)]
pub(crate) struct PilotPolarity {
    scrambler: Scrambler,
}

impl PilotPolarity {
    pub(crate) fn new() -> Self {
        Self {
            scrambler: Scrambler::new(0x7F),
        }
    }
    pub(crate) fn next(&mut self) -> f64 {
        if self.scrambler.next_bit() == 1 {
            -1.0
        } else {
            1.0
        }
    }
}

/// Assembles frequency-domain symbols into time-domain OFDM samples.
///
/// # Example
///
/// ```
/// use wilis_fxp::Cplx;
/// use wilis_phy::{OfdmDemodulator, OfdmModulator, DATA_CARRIERS, SYMBOL_LEN};
///
/// let data = vec![Cplx::new(0.5, -0.5); DATA_CARRIERS];
/// let mut tx = OfdmModulator::new();
/// let samples = tx.modulate(&data);
/// assert_eq!(samples.len(), SYMBOL_LEN);
///
/// let mut rx = OfdmDemodulator::new();
/// let back = rx.demodulate(&samples);
/// for (a, b) in data.iter().zip(&back) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct OfdmModulator {
    pub(crate) polarity: PilotPolarity,
    /// The shared symbol-layout plan.
    pub(crate) plan: Arc<OfdmPlan>,
    /// Reusable frequency-domain working buffer, always `FFT_LEN` long.
    pub(crate) freq: Vec<Cplx>,
}

impl OfdmModulator {
    /// A modulator at the start of a frame (pilot polarity index 0).
    pub fn new() -> Self {
        Self {
            polarity: PilotPolarity::new(),
            plan: OfdmPlan::shared(),
            freq: vec![Cplx::ZERO; FFT_LEN],
        }
    }

    /// Rewinds to the start of a frame (pilot polarity index 0) without
    /// reallocating — the per-packet reset of the scenario engine.
    pub fn reset(&mut self) {
        self.polarity = PilotPolarity::new();
    }

    /// Modulates one symbol of 48 data-subcarrier values into 80 time
    /// samples (64-point IFFT plus 16-sample cyclic prefix).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != DATA_CARRIERS`.
    pub fn modulate(&mut self, data: &[Cplx]) -> Vec<Cplx> {
        let mut out = vec![Cplx::ZERO; SYMBOL_LEN];
        self.modulate_into(data, &mut out);
        out
    }

    /// Modulates one symbol directly into an 80-sample slice of the packet
    /// buffer (the allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != DATA_CARRIERS` or `out.len() != SYMBOL_LEN`.
    pub fn modulate_into(&mut self, data: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(data.len(), DATA_CARRIERS, "one symbol of data carriers");
        assert_eq!(out.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let plan = &self.plan;
        let freq = &mut self.freq;
        // The symbol is assembled directly in bit-reversed order (the
        // `_rev` tables fold the FFT's permutation into the bin lookup),
        // so the transform runs its butterfly stages with no swap pass.
        // Only the guard bins need zeroing: the data and pilot bins are
        // overwritten below, so the reference's full-buffer wipe is
        // redundant work the plan's partition makes skippable.
        for &b in plan.guard_bins_rev() {
            freq[b] = Cplx::ZERO;
        }
        for (value, &b) in data.iter().zip(plan.data_bins_rev().iter()) {
            freq[b] = *value;
        }
        let p = self.polarity.next();
        for (i, &b) in plan.pilot_bins_rev().iter().enumerate() {
            freq[b] = Cplx::new(PILOT_BASE[i] * p, 0.0);
        }
        plan.fft().ifft_stages(freq);
        // The IFFT's 1/N normalization spreads unit subcarrier energy
        // across N samples; rescale so average time-sample power equals
        // average subcarrier power (unit for unit-energy constellations).
        let scale = plan.tx_scale();
        for v in freq.iter_mut() {
            *v = v.scale(scale);
        }
        out[..CP_LEN].copy_from_slice(&freq[FFT_LEN - CP_LEN..]);
        out[CP_LEN..].copy_from_slice(freq);
    }

    /// Modulates a whole packet of data-carrier values (one 48-carrier
    /// symbol after another) into its full sample buffer, streaming every
    /// symbol through the shared plan with no per-symbol buffer churn.
    ///
    /// # Panics
    ///
    /// Panics if `carriers.len()` is not a multiple of `DATA_CARRIERS` or
    /// `out.len()` is not the matching number of `SYMBOL_LEN` blocks.
    pub fn modulate_packet_into(&mut self, carriers: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(
            carriers.len() % DATA_CARRIERS,
            0,
            "whole symbols of data carriers"
        );
        let n_symbols = carriers.len() / DATA_CARRIERS;
        assert_eq!(
            out.len(),
            n_symbols * SYMBOL_LEN,
            "output must hold exactly the packet's samples"
        );
        for (data, samples) in carriers
            .chunks_exact(DATA_CARRIERS)
            .zip(out.chunks_exact_mut(SYMBOL_LEN))
        {
            self.modulate_into(data, samples);
        }
    }
}

impl Default for OfdmModulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Recovers data-subcarrier values from time-domain OFDM samples.
#[derive(Debug, Clone)]
pub struct OfdmDemodulator {
    pub(crate) polarity: PilotPolarity,
    /// The shared symbol-layout plan.
    pub(crate) plan: Arc<OfdmPlan>,
    /// Reusable frequency-domain working buffer, always `FFT_LEN` long.
    pub(crate) freq: Vec<Cplx>,
    /// Lane-major frequency-domain buffer of the batched path
    /// ([`OfdmDemodulator::demodulate_packet_batch_into`]); empty until
    /// the first batched demodulation.
    pub(crate) freq_lanes: Vec<Cplx>,
    /// Pilot correlation of the last demodulated symbol; the common phase
    /// error is derived lazily in [`OfdmDemodulator::last_pilot_phase`] so
    /// the hot loop never pays the `atan2`.
    pub(crate) last_pilot_sum: Cplx,
}

impl OfdmDemodulator {
    /// A demodulator aligned to the start of a frame.
    pub fn new() -> Self {
        Self {
            polarity: PilotPolarity::new(),
            plan: OfdmPlan::shared(),
            freq: vec![Cplx::ZERO; FFT_LEN],
            freq_lanes: Vec::new(),
            last_pilot_sum: Cplx::ZERO,
        }
    }

    /// Rewinds to the start of a frame (pilot polarity index 0) without
    /// reallocating — the per-packet reset of the scenario engine.
    pub fn reset(&mut self) {
        self.polarity = PilotPolarity::new();
        self.last_pilot_sum = Cplx::ZERO;
    }

    /// Demodulates one 80-sample OFDM symbol back to 48 data-subcarrier
    /// values. Assumes sample alignment (the paper's pipeline omits
    /// synchronization, §4.4.4).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != SYMBOL_LEN`.
    pub fn demodulate(&mut self, samples: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::new();
        self.demodulate_into(samples, &mut out);
        out
    }

    /// Demodulates one symbol into `out`, reusing its capacity (the
    /// allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != SYMBOL_LEN`.
    pub fn demodulate_into(&mut self, samples: &[Cplx], out: &mut Vec<Cplx>) {
        out.clear();
        self.demodulate_append(samples, out);
    }

    /// Demodulates a whole packet of samples into `out` (48 carriers per
    /// symbol, appended in symbol order), streaming every symbol through
    /// the shared plan.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is not a multiple of `SYMBOL_LEN`.
    pub fn demodulate_packet_into(&mut self, samples: &[Cplx], out: &mut Vec<Cplx>) {
        assert_eq!(
            samples.len() % SYMBOL_LEN,
            0,
            "whole OFDM symbols of samples"
        );
        out.clear();
        for sym in samples.chunks_exact(SYMBOL_LEN) {
            self.demodulate_append(sym, out);
        }
    }

    /// Demodulates `lanes` equal-length packets in lockstep into one
    /// lane-major carrier stream: carrier `c` of symbol `s` for lane `l`
    /// lands at `out[(s * DATA_CARRIERS + c) * lanes + l]`. Every lane is
    /// assumed to start at its own frame boundary, so all lanes share one
    /// pilot-polarity sequence (reset here, exactly as the scalar
    /// per-packet path resets) and one plan; the per-lane FFT arithmetic
    /// is the scalar operation sequence run with the lane axis innermost
    /// (see [`crate::plan::FftPlan`]'s lane forms), making each lane's
    /// carriers bit-identical to a scalar
    /// [`OfdmDemodulator::demodulate_packet_into`] of that lane.
    ///
    /// The pilot diagnostic (`last_pilot_phase`) is *not* updated by this
    /// path: pilot sums never feed the data output, and the batch path
    /// exists purely for throughput.
    ///
    /// # Panics
    ///
    /// Panics if `lane_samples` is empty, the lanes differ in length, or
    /// the common length is not a multiple of `SYMBOL_LEN`.
    pub fn demodulate_packet_batch_into<S: AsRef<[Cplx]>>(
        &mut self,
        lane_samples: &[S],
        out: &mut Vec<Cplx>,
    ) {
        let lanes = lane_samples.len();
        assert!(lanes > 0, "at least one lane");
        let len = lane_samples[0].as_ref().len();
        assert!(
            lane_samples.iter().all(|s| s.as_ref().len() == len),
            "all lanes must hold the same number of samples"
        );
        assert_eq!(len % SYMBOL_LEN, 0, "whole OFDM symbols of samples");
        let n_symbols = len / SYMBOL_LEN;
        self.polarity = PilotPolarity::new();
        let plan = &self.plan;
        let freq = &mut self.freq_lanes;
        freq.resize(FFT_LEN * lanes, Cplx::ZERO);
        let scale = plan.rx_scale();
        out.clear();
        out.reserve(n_symbols * DATA_CARRIERS * lanes);
        for s in 0..n_symbols {
            let base = s * SYMBOL_LEN + CP_LEN;
            // Fused prefix-strip + bit-reversal gather, one row of lanes
            // per FFT bin.
            for (i, row) in freq.chunks_exact_mut(lanes).enumerate() {
                let j = base + plan.fft().bitrev_of(i);
                for (slot, lane) in row.iter_mut().zip(lane_samples) {
                    *slot = lane.as_ref()[j];
                }
            }
            plan.fft().fft_stages_lanes(freq, lanes);
            // Advance the shared polarity to keep the pilot sequence
            // position identical to the scalar path (the polarity value
            // itself only feeds the skipped pilot diagnostic).
            let _ = self.polarity.next();
            for &b in plan.data_bins().iter() {
                out.extend(
                    freq[b * lanes..(b + 1) * lanes]
                        .iter()
                        .map(|v| v.scale(scale)),
                );
            }
        }
    }

    /// One planned symbol, appended to `out`.
    fn demodulate_append(&mut self, samples: &[Cplx], out: &mut Vec<Cplx>) {
        assert_eq!(samples.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let plan = &self.plan;
        let freq = &mut self.freq;
        // Fused copy + bit-reversal: one gather replaces the prefix-strip
        // copy and the transform's swap pass.
        plan.fft().gather(&samples[CP_LEN..], freq);
        plan.fft().fft_stages(freq);
        let scale = plan.rx_scale();
        let p = self.polarity.next();
        // Pilot-based common phase estimate (diagnostic only; no channel
        // estimation is applied, faithful to the paper's pipeline). Only
        // the complex correlation is accumulated here; the `atan2` waits
        // until instrumentation asks for the angle.
        let mut pilot_sum = Cplx::ZERO;
        for (i, &b) in plan.pilot_bins().iter().enumerate() {
            pilot_sum += freq[b].scale(PILOT_BASE[i] * p);
        }
        self.last_pilot_sum = pilot_sum;
        out.extend(plan.data_bins().iter().map(|&b| freq[b].scale(scale)));
    }

    /// Common phase (radians) measured from the last symbol's pilots.
    pub fn last_pilot_phase(&self) -> f64 {
        self.last_pilot_sum.arg()
    }
}

impl Default for OfdmDemodulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_layout() {
        let carriers: Vec<i32> = data_subcarriers().collect();
        assert_eq!(carriers.len(), DATA_CARRIERS);
        assert!(!carriers.contains(&0), "DC is never a data carrier");
        for p in PILOT_CARRIERS {
            assert!(!carriers.contains(&p), "pilot {p} not a data carrier");
        }
        assert!(carriers.iter().all(|&k| (-26..=26).contains(&k)));
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let data: Vec<Cplx> = (0..DATA_CARRIERS)
            .map(|i| Cplx::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()).scale(0.5))
            .collect();
        let mut tx = OfdmModulator::new();
        let mut rx = OfdmDemodulator::new();
        for _ in 0..5 {
            let samples = tx.modulate(&data);
            let back = rx.demodulate(&samples);
            for (i, (a, b)) in data.iter().zip(&back).enumerate() {
                assert!((*a - *b).norm() < 1e-10, "carrier {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packet_forms_match_symbol_forms() {
        let n_sym = 7;
        let carriers: Vec<Cplx> = (0..n_sym * DATA_CARRIERS)
            .map(|i| Cplx::new((i as f64 * 0.13).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let mut tx_packet = OfdmModulator::new();
        let mut tx_symbol = OfdmModulator::new();
        let mut packet = vec![Cplx::ZERO; n_sym * SYMBOL_LEN];
        tx_packet.modulate_packet_into(&carriers, &mut packet);
        for (s, data) in carriers.chunks_exact(DATA_CARRIERS).enumerate() {
            let sym = tx_symbol.modulate(data);
            assert_eq!(&packet[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN], &sym[..]);
        }

        let mut rx_packet = OfdmDemodulator::new();
        let mut rx_symbol = OfdmDemodulator::new();
        let mut all = Vec::new();
        rx_packet.demodulate_packet_into(&packet, &mut all);
        assert_eq!(all.len(), n_sym * DATA_CARRIERS);
        for (s, sym) in packet.chunks_exact(SYMBOL_LEN).enumerate() {
            let back = rx_symbol.demodulate(sym);
            assert_eq!(&all[s * DATA_CARRIERS..(s + 1) * DATA_CARRIERS], &back[..]);
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let data = vec![Cplx::new(0.3, 0.1); DATA_CARRIERS];
        let samples = OfdmModulator::new().modulate(&data);
        assert_eq!(&samples[..CP_LEN], &samples[FFT_LEN..]);
    }

    #[test]
    fn average_sample_power_is_near_unity_for_unit_constellations() {
        // With unit-energy data carriers, the chosen scaling gives average
        // time-domain sample power ~1, so channel SNR definitions line up.
        let data = vec![Cplx::new(1.0, 0.0); DATA_CARRIERS];
        let samples = OfdmModulator::new().modulate(&data);
        let p: f64 = samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64;
        assert!((p - 1.0).abs() < 0.3, "sample power {p}");
    }

    #[test]
    fn pilot_polarity_sequence_starts_plus() {
        // First scrambler bits with all-ones seed are 0,0,0,0,1,...
        // so polarities begin +1,+1,+1,+1,−1.
        let mut p = PilotPolarity::new();
        let seq: Vec<f64> = (0..5).map(|_| p.next()).collect();
        assert_eq!(seq, vec![1.0, 1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn demodulator_tracks_symbol_index_for_pilots() {
        // If TX and RX pilot sequences desynchronize, the pilot phase
        // estimate flips sign on polarity mismatches; keeping them in step
        // must hold the estimate near zero on a clean channel.
        let data = vec![Cplx::new(0.5, 0.5); DATA_CARRIERS];
        let mut tx = OfdmModulator::new();
        let mut rx = OfdmDemodulator::new();
        for _ in 0..10 {
            let s = tx.modulate(&data);
            let _ = rx.demodulate(&s);
            assert!(rx.last_pilot_phase().abs() < 1e-9);
        }
    }
}
