//! OFDM symbol assembly: 64-point FFT, 48 data + 4 pilot subcarriers,
//! 16-sample cyclic prefix (802.11-2007 §17.3.5.9).

use wilis_fxp::Cplx;

use crate::fft::{fft, ifft};
use crate::scrambler::Scrambler;

/// FFT length (subcarrier count including guards and DC).
pub const FFT_LEN: usize = 64;
/// Cyclic-prefix length in samples.
pub const CP_LEN: usize = 16;
/// Total time-domain samples per OFDM symbol.
pub const SYMBOL_LEN: usize = FFT_LEN + CP_LEN;
/// Data subcarriers per symbol.
pub const DATA_CARRIERS: usize = 48;

/// Logical subcarrier indices (−26..=26 excluding 0 and pilots) of the 48
/// data carriers, in the order coded bits fill them.
fn data_subcarriers() -> impl Iterator<Item = i32> {
    (-26..=26).filter(|&k| k != 0 && !PILOT_CARRIERS.contains(&k))
}

/// Pilot subcarrier positions.
pub(crate) const PILOT_CARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Base pilot polarities (before the per-symbol polarity sequence).
const PILOT_BASE: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

fn bin_of(k: i32) -> usize {
    ((k + FFT_LEN as i32) % FFT_LEN as i32) as usize
}

/// Per-symbol pilot polarity: the 127-periodic scrambler sequence with
/// all-ones seed, mapped 0 → +1, 1 → −1 (802.11-2007 §17.3.5.9).
#[derive(Debug, Clone)]
struct PilotPolarity {
    scrambler: Scrambler,
}

impl PilotPolarity {
    fn new() -> Self {
        Self {
            scrambler: Scrambler::new(0x7F),
        }
    }
    fn next(&mut self) -> f64 {
        if self.scrambler.next_bit() == 1 {
            -1.0
        } else {
            1.0
        }
    }
}

/// Assembles frequency-domain symbols into time-domain OFDM samples.
///
/// # Example
///
/// ```
/// use wilis_fxp::Cplx;
/// use wilis_phy::{OfdmDemodulator, OfdmModulator, DATA_CARRIERS, SYMBOL_LEN};
///
/// let data = vec![Cplx::new(0.5, -0.5); DATA_CARRIERS];
/// let mut tx = OfdmModulator::new();
/// let samples = tx.modulate(&data);
/// assert_eq!(samples.len(), SYMBOL_LEN);
///
/// let mut rx = OfdmDemodulator::new();
/// let back = rx.demodulate(&samples);
/// for (a, b) in data.iter().zip(&back) {
///     assert!((*a - *b).norm() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct OfdmModulator {
    polarity: PilotPolarity,
    /// Reusable frequency-domain working buffer.
    freq: Vec<Cplx>,
}

impl OfdmModulator {
    /// A modulator at the start of a frame (pilot polarity index 0).
    pub fn new() -> Self {
        Self {
            polarity: PilotPolarity::new(),
            freq: vec![Cplx::ZERO; FFT_LEN],
        }
    }

    /// Rewinds to the start of a frame (pilot polarity index 0) without
    /// reallocating — the per-packet reset of the scenario engine.
    pub fn reset(&mut self) {
        self.polarity = PilotPolarity::new();
    }

    /// Modulates one symbol of 48 data-subcarrier values into 80 time
    /// samples (64-point IFFT plus 16-sample cyclic prefix).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != DATA_CARRIERS`.
    pub fn modulate(&mut self, data: &[Cplx]) -> Vec<Cplx> {
        let mut out = vec![Cplx::ZERO; SYMBOL_LEN];
        self.modulate_into(data, &mut out);
        out
    }

    /// Modulates one symbol directly into an 80-sample slice of the packet
    /// buffer (the allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != DATA_CARRIERS` or `out.len() != SYMBOL_LEN`.
    pub fn modulate_into(&mut self, data: &[Cplx], out: &mut [Cplx]) {
        assert_eq!(data.len(), DATA_CARRIERS, "one symbol of data carriers");
        assert_eq!(out.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let freq = &mut self.freq;
        freq.clear();
        freq.resize(FFT_LEN, Cplx::ZERO);
        for (value, k) in data.iter().zip(data_subcarriers()) {
            freq[bin_of(k)] = *value;
        }
        let p = self.polarity.next();
        for (i, &k) in PILOT_CARRIERS.iter().enumerate() {
            freq[bin_of(k)] = Cplx::new(PILOT_BASE[i] * p, 0.0);
        }
        ifft(freq);
        // The IFFT's 1/N normalization spreads unit subcarrier energy
        // across N samples; rescale so average time-sample power equals
        // average subcarrier power (unit for unit-energy constellations).
        let scale = (FFT_LEN as f64 / (DATA_CARRIERS + PILOT_CARRIERS.len()) as f64).sqrt()
            * (FFT_LEN as f64).sqrt();
        for v in freq.iter_mut() {
            *v = v.scale(scale);
        }
        out[..CP_LEN].copy_from_slice(&freq[FFT_LEN - CP_LEN..]);
        out[CP_LEN..].copy_from_slice(freq);
    }
}

impl Default for OfdmModulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Recovers data-subcarrier values from time-domain OFDM samples.
#[derive(Debug, Clone)]
pub struct OfdmDemodulator {
    polarity: PilotPolarity,
    /// Reusable frequency-domain working buffer.
    freq: Vec<Cplx>,
    /// Residual common phase error measured from the pilots of the last
    /// demodulated symbol (exposed for instrumentation).
    last_pilot_phase: f64,
}

impl OfdmDemodulator {
    /// A demodulator aligned to the start of a frame.
    pub fn new() -> Self {
        Self {
            polarity: PilotPolarity::new(),
            freq: vec![Cplx::ZERO; FFT_LEN],
            last_pilot_phase: 0.0,
        }
    }

    /// Rewinds to the start of a frame (pilot polarity index 0) without
    /// reallocating — the per-packet reset of the scenario engine.
    pub fn reset(&mut self) {
        self.polarity = PilotPolarity::new();
        self.last_pilot_phase = 0.0;
    }

    /// Demodulates one 80-sample OFDM symbol back to 48 data-subcarrier
    /// values. Assumes sample alignment (the paper's pipeline omits
    /// synchronization, §4.4.4).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != SYMBOL_LEN`.
    pub fn demodulate(&mut self, samples: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::new();
        self.demodulate_into(samples, &mut out);
        out
    }

    /// Demodulates one symbol into `out`, reusing its capacity (the
    /// allocation-free hot-path form).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != SYMBOL_LEN`.
    pub fn demodulate_into(&mut self, samples: &[Cplx], out: &mut Vec<Cplx>) {
        assert_eq!(samples.len(), SYMBOL_LEN, "one OFDM symbol of samples");
        let freq = &mut self.freq;
        freq.clear();
        freq.extend_from_slice(&samples[CP_LEN..]);
        fft(freq);
        let scale = 1.0
            / ((FFT_LEN as f64 / (DATA_CARRIERS + PILOT_CARRIERS.len()) as f64).sqrt()
                * (FFT_LEN as f64).sqrt());
        let p = self.polarity.next();
        // Pilot-based common phase estimate (diagnostic only; no channel
        // estimation is applied, faithful to the paper's pipeline).
        let pilot_sum: Cplx = PILOT_CARRIERS
            .iter()
            .enumerate()
            .map(|(i, &k)| freq[bin_of(k)].scale(PILOT_BASE[i] * p))
            .sum();
        self.last_pilot_phase = pilot_sum.arg();
        out.clear();
        out.reserve(DATA_CARRIERS);
        out.extend(data_subcarriers().map(|k| freq[bin_of(k)].scale(scale)));
    }

    /// Common phase (radians) measured from the last symbol's pilots.
    pub fn last_pilot_phase(&self) -> f64 {
        self.last_pilot_phase
    }
}

impl Default for OfdmDemodulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_layout() {
        let carriers: Vec<i32> = data_subcarriers().collect();
        assert_eq!(carriers.len(), DATA_CARRIERS);
        assert!(!carriers.contains(&0), "DC is never a data carrier");
        for p in PILOT_CARRIERS {
            assert!(!carriers.contains(&p), "pilot {p} not a data carrier");
        }
        assert!(carriers.iter().all(|&k| (-26..=26).contains(&k)));
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let data: Vec<Cplx> = (0..DATA_CARRIERS)
            .map(|i| Cplx::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()).scale(0.5))
            .collect();
        let mut tx = OfdmModulator::new();
        let mut rx = OfdmDemodulator::new();
        for _ in 0..5 {
            let samples = tx.modulate(&data);
            let back = rx.demodulate(&samples);
            for (i, (a, b)) in data.iter().zip(&back).enumerate() {
                assert!((*a - *b).norm() < 1e-10, "carrier {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let data = vec![Cplx::new(0.3, 0.1); DATA_CARRIERS];
        let samples = OfdmModulator::new().modulate(&data);
        assert_eq!(&samples[..CP_LEN], &samples[FFT_LEN..]);
    }

    #[test]
    fn average_sample_power_is_near_unity_for_unit_constellations() {
        // With unit-energy data carriers, the chosen scaling gives average
        // time-domain sample power ~1, so channel SNR definitions line up.
        let data = vec![Cplx::new(1.0, 0.0); DATA_CARRIERS];
        let samples = OfdmModulator::new().modulate(&data);
        let p: f64 = samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64;
        assert!((p - 1.0).abs() < 0.3, "sample power {p}");
    }

    #[test]
    fn pilot_polarity_sequence_starts_plus() {
        // First scrambler bits with all-ones seed are 0,0,0,0,1,...
        // so polarities begin +1,+1,+1,+1,−1.
        let mut p = PilotPolarity::new();
        let seq: Vec<f64> = (0..5).map(|_| p.next()).collect();
        assert_eq!(seq, vec![1.0, 1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn demodulator_tracks_symbol_index_for_pilots() {
        // If TX and RX pilot sequences desynchronize, the pilot phase
        // estimate flips sign on polarity mismatches; keeping them in step
        // must hold the estimate near zero on a clean channel.
        let data = vec![Cplx::new(0.5, 0.5); DATA_CARRIERS];
        let mut tx = OfdmModulator::new();
        let mut rx = OfdmDemodulator::new();
        for _ in 0..10 {
            let s = tx.modulate(&data);
            let _ = rx.demodulate(&s);
            assert!(rx.last_pilot_phase().abs() < 1e-9);
        }
    }
}
