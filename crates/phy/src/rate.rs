//! The eight 802.11a/g PHY rates (the rows of the paper's Figure 2).

use std::fmt;

use wilis_fec::CodeRate;

use crate::mapper::Modulation;
use crate::ofdm::DATA_CARRIERS;

/// One of the eight 802.11a/g modulation-and-coding rates.
///
/// # Example
///
/// ```
/// use wilis_phy::PhyRate;
///
/// let r = PhyRate::Qam64ThreeQuarters;
/// assert_eq!(r.mbps(), 54.0);
/// assert_eq!(r.data_bits_per_symbol(), 216);
/// assert_eq!(PhyRate::all().len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhyRate {
    /// BPSK, rate 1/2 — 6 Mbps.
    BpskHalf,
    /// BPSK, rate 3/4 — 9 Mbps.
    BpskThreeQuarters,
    /// QPSK, rate 1/2 — 12 Mbps.
    QpskHalf,
    /// QPSK, rate 3/4 — 18 Mbps.
    QpskThreeQuarters,
    /// 16-QAM, rate 1/2 — 24 Mbps.
    Qam16Half,
    /// 16-QAM, rate 3/4 — 36 Mbps.
    Qam16ThreeQuarters,
    /// 64-QAM, rate 2/3 — 48 Mbps.
    Qam64TwoThirds,
    /// 64-QAM, rate 3/4 — 54 Mbps.
    Qam64ThreeQuarters,
}

impl PhyRate {
    /// All eight rates, slowest to fastest — the natural order for rate
    /// adaptation.
    pub fn all() -> [PhyRate; 8] {
        [
            PhyRate::BpskHalf,
            PhyRate::BpskThreeQuarters,
            PhyRate::QpskHalf,
            PhyRate::QpskThreeQuarters,
            PhyRate::Qam16Half,
            PhyRate::Qam16ThreeQuarters,
            PhyRate::Qam64TwoThirds,
            PhyRate::Qam64ThreeQuarters,
        ]
    }

    /// The subcarrier modulation.
    pub fn modulation(self) -> Modulation {
        match self {
            PhyRate::BpskHalf | PhyRate::BpskThreeQuarters => Modulation::Bpsk,
            PhyRate::QpskHalf | PhyRate::QpskThreeQuarters => Modulation::Qpsk,
            PhyRate::Qam16Half | PhyRate::Qam16ThreeQuarters => Modulation::Qam16,
            PhyRate::Qam64TwoThirds | PhyRate::Qam64ThreeQuarters => Modulation::Qam64,
        }
    }

    /// The convolutional code rate (after puncturing).
    pub fn code_rate(self) -> CodeRate {
        match self {
            PhyRate::BpskHalf | PhyRate::QpskHalf | PhyRate::Qam16Half => CodeRate::Half,
            PhyRate::Qam64TwoThirds => CodeRate::TwoThirds,
            _ => CodeRate::ThreeQuarters,
        }
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(self) -> usize {
        DATA_CARRIERS * self.modulation().bits_per_symbol()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn data_bits_per_symbol(self) -> usize {
        let (n, d) = self.code_rate().fraction();
        self.coded_bits_per_symbol() * n as usize / d as usize
    }

    /// Nominal line rate in Mbps (one OFDM symbol every 4 µs).
    pub fn mbps(self) -> f64 {
        self.data_bits_per_symbol() as f64 / 4.0
    }

    /// Nominal line rate in bits per second.
    pub fn bps(self) -> f64 {
        self.mbps() * 1e6
    }

    /// The next faster rate, if any.
    pub fn faster(self) -> Option<PhyRate> {
        let all = Self::all();
        let idx = all.iter().position(|&r| r == self).expect("rate in table"); // lint: allow(panic-policy) — `self` is one of Self::all() by construction of the enum
        all.get(idx + 1).copied()
    }

    /// The next slower rate, if any.
    pub fn slower(self) -> Option<PhyRate> {
        let all = Self::all();
        let idx = all.iter().position(|&r| r == self).expect("rate in table"); // lint: allow(panic-policy) — `self` is one of Self::all() by construction of the enum
        idx.checked_sub(1).map(|i| all[i])
    }

    /// A short label matching the paper's tables (e.g. `"QAM-16 3/4"`).
    pub fn label(self) -> String {
        format!("{} {}", self.modulation(), self.code_rate())
    }
}

impl fmt::Display for PhyRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} Mbps)", self.label(), self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_80211g() {
        let expect: [(PhyRate, f64, usize, usize); 8] = [
            (PhyRate::BpskHalf, 6.0, 48, 24),
            (PhyRate::BpskThreeQuarters, 9.0, 48, 36),
            (PhyRate::QpskHalf, 12.0, 96, 48),
            (PhyRate::QpskThreeQuarters, 18.0, 96, 72),
            (PhyRate::Qam16Half, 24.0, 192, 96),
            (PhyRate::Qam16ThreeQuarters, 36.0, 192, 144),
            (PhyRate::Qam64TwoThirds, 48.0, 288, 192),
            (PhyRate::Qam64ThreeQuarters, 54.0, 288, 216),
        ];
        for (rate, mbps, cbps, dbps) in expect {
            assert_eq!(rate.mbps(), mbps, "{rate}");
            assert_eq!(rate.coded_bits_per_symbol(), cbps, "{rate}");
            assert_eq!(rate.data_bits_per_symbol(), dbps, "{rate}");
        }
    }

    #[test]
    fn ordering_matches_speed() {
        let all = PhyRate::all();
        for w in all.windows(2) {
            assert!(w[0].mbps() < w[1].mbps());
        }
    }

    #[test]
    fn faster_slower_navigation() {
        assert_eq!(PhyRate::BpskHalf.slower(), None);
        assert_eq!(PhyRate::Qam64ThreeQuarters.faster(), None);
        assert_eq!(PhyRate::QpskHalf.faster(), Some(PhyRate::QpskThreeQuarters));
        assert_eq!(PhyRate::QpskHalf.slower(), Some(PhyRate::BpskThreeQuarters));
    }

    #[test]
    fn labels() {
        assert_eq!(PhyRate::Qam16Half.label(), "QAM-16 1/2");
        assert_eq!(PhyRate::BpskHalf.to_string(), "BPSK 1/2 (6 Mbps)");
    }
}
