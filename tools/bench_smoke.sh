#!/usr/bin/env bash
# Smoke-runs one bench target exactly the way CI's bench-smoke matrix
# does, so the gate is reproducible locally:
#
#     tools/bench_smoke.sh perf_trellis
#
# The bench runs with WILIS_FAST=1 (one timed iteration) and a small
# Monte-Carlo budget (WILIS_BITS, default 40000). Benches that emit a
# BENCH_*.json trajectory file write it under $WILIS_SMOKE_OUT (default
# /tmp/wilis-bench-smoke), then tools/check_bench.py validates the
# schema and --compare diffs its structure against the committed
# counterpart at the repo root. Absolute perf numbers are never
# compared.
set -euo pipefail

bench="${1:-}"
repo="$(cd "$(dirname "$0")/.." && pwd)"

# bench target -> committed trajectory artifact (empty: stdout only).
case "$bench" in
    perf_trellis)  committed=BENCH_trellis.json ;;
    perf_batch)    committed=BENCH_batch.json ;;
    perf_phy)      committed=BENCH_phy.json ;;
    cell_sweep)    committed=BENCH_cell.json ;;
    harq_sweep)    committed=BENCH_harq.json ;;
    sweep_service) committed=BENCH_service.json ;;
    sweep_grid|link_sweep) committed="" ;;
    *)
        echo "usage: tools/bench_smoke.sh <sweep_grid|link_sweep|perf_trellis|perf_batch|perf_phy|cell_sweep|harq_sweep|sweep_service>" >&2
        exit 2
        ;;
esac

export WILIS_FAST=1
export WILIS_BITS="${WILIS_BITS:-40000}"

if [ -n "$committed" ]; then
    out_dir="${WILIS_SMOKE_OUT:-/tmp/wilis-bench-smoke}"
    mkdir -p "$out_dir"
    out="$out_dir/$committed"
    WILIS_BENCH_OUT="$out" cargo bench -p wilis-bench --bench "$bench"
    python3 "$repo/tools/check_bench.py" "$bench" "$out" --compare "$repo/$committed"
else
    cargo bench -p wilis-bench --bench "$bench"
    echo "$bench: asserts run in-bench; no JSON trajectory artifact to check"
fi
