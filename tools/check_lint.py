#!/usr/bin/env python3
"""Schema checks for the wilis-lint JSON report (`--json` output).

CI runs the linter with a report path and then validates the artifact,
so a refactor of the report writer cannot silently change the format
downstream tooling reads:

    cargo run -q -p wilis-lint -- --json /tmp/lint_report.json
    python3 tools/check_lint.py /tmp/lint_report.json
"""

import json
import sys

RULES = [
    "hash-iter",
    "wall-clock",
    "no-alloc",
    "panic-policy",
    "supervised-unwind",
    "forbid-unsafe",
    "pragma",
]


def check(doc):
    assert doc["tool"] == "wilis-lint", doc.get("tool")
    assert doc["version"] == 1, doc.get("version")
    assert doc["rules"] == RULES, doc.get("rules")
    assert doc["files_scanned"] > 0, "an empty scan validates nothing"

    for f in doc["findings"]:
        assert f["rule"] in RULES, f
        assert f["file"], f
        assert f["line"] >= 1, f
        assert f["message"], f

    for a in doc["allowed"]:
        assert a["rule"] in RULES, a
        assert a["file"], a
        assert a["line"] >= 1, a
        # The pragma grammar makes the reason mandatory; an empty one
        # here means the parser regressed.
        assert a["reason"].strip(), a

    counts = doc["counts"]
    assert counts["findings"] == len(doc["findings"]), counts
    assert counts["allowed"] == len(doc["allowed"]), counts


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as fh:
        doc = json.load(fh)
    check(doc)
    print(
        f"check_lint: ok ({doc['files_scanned']} files, "
        f"{doc['counts']['findings']} findings, "
        f"{doc['counts']['allowed']} allowed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
