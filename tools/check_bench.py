#!/usr/bin/env python3
"""Schema checks for the repo's BENCH_*.json perf-trajectory artifacts.

One check table per bench, so CI can validate every trajectory file a
bench smoke emits and a refactor cannot silently change the format the
downstream tooling reads:

    python3 tools/check_bench.py perf_trellis /tmp/BENCH_trellis.json
    python3 tools/check_bench.py perf_phy    /tmp/BENCH_phy.json
    python3 tools/check_bench.py cell_sweep  /tmp/BENCH_cell.json
    python3 tools/check_bench.py harq_sweep  /tmp/BENCH_harq.json

With `--compare <committed.json>` the fresh report's *structure* is also
diffed against the committed trajectory file: missing/renamed keys and
missing series (a decoder, policy, or SNR point that vanished) fail the
check. Absolute perf numbers are never compared — shared CI runners make
them meaningless:

    python3 tools/check_bench.py harq_sweep /tmp/BENCH_harq.json \\
        --compare BENCH_harq.json

An unknown table name is a hard error, so a renamed bench cannot
silently skip its schema check.
"""

import json
import sys


def check_perf_trellis(doc):
    """Compiled-vs-reference decode throughput plus grid packets/s."""
    assert doc["coded_bits_per_block"] > 0
    decoders = {d["decoder"] for d in doc["decoders"]}
    assert decoders == {"viterbi", "sova", "bcjr"}, decoders
    for d in doc["decoders"]:
        for key in (
            "compiled_mbps",
            "reference_mbps",
            "speedup",
            "compiled_mean_secs",
            "reference_mean_secs",
        ):
            assert d[key] > 0, (d["decoder"], key)
    grid = doc["grid"]
    for key in ("scenarios", "packets_total", "batch_width", "packets_per_sec", "mean_secs"):
        assert grid[key] > 0, key


def check_perf_batch(doc):
    """Lockstep batch decode and batched RX pipeline vs scalar."""
    assert doc["batch_width"] > 1, "a batch of one lane measures nothing"
    assert doc["coded_bits_per_block"] > 0
    assert doc["payload_bits"] > 0
    for section in ("decoders", "rx"):
        names = {d["decoder"] for d in doc[section]}
        assert names == {"viterbi", "sova", "bcjr"}, (section, names)
    for d in doc["decoders"]:
        for key in ("batch_mbps", "scalar_mbps", "speedup", "batch_mean_secs", "scalar_mean_secs"):
            assert d[key] > 0, (d["decoder"], key)
    for r in doc["rx"]:
        for key in ("batch_pps", "scalar_pps", "speedup", "batch_mean_secs", "scalar_mean_secs"):
            assert r[key] > 0, (r["decoder"], key)


def check_perf_phy(doc):
    """Planned-vs-reference front-end throughput plus grid packets/s."""
    assert doc["symbols"] > 0
    assert doc["samples_per_symbol"] == 80
    ops = {o["op"] for o in doc["ofdm"]}
    assert ops == {"modulate", "demodulate"}, ops
    for o in doc["ofdm"]:
        for key in (
            "planned_msps",
            "reference_msps",
            "speedup",
            "planned_mean_secs",
            "reference_mean_secs",
        ):
            assert o[key] > 0, (o["op"], key)
    modulations = {m["modulation"] for m in doc["modulations"]}
    assert modulations == {"bpsk", "qpsk", "qam16", "qam64"}, modulations
    for m in doc["modulations"]:
        for key in (
            "map_planned_mbps",
            "map_reference_mbps",
            "map_speedup",
            "demap_planned_mbps",
            "demap_reference_mbps",
            "demap_speedup",
        ):
            assert m[key] > 0, (m["modulation"], key)
    grid = doc["grid"]
    for key in ("scenarios", "packets_total", "packets_per_sec", "mean_secs"):
        assert grid[key] > 0, key


def check_cell_sweep(doc):
    """Per-policy contention-cell goodput and throughput."""
    for key in ("nodes", "slots", "payload_bits"):
        assert doc[key] > 0, key
    policies = {p["policy"] for p in doc["policies"]}
    assert policies == {"aloha", "csma", "tdma"}, policies
    for p in doc["policies"]:
        name = p["policy"]
        assert 0.0 < p["aggregate_goodput"] <= 1.0, (name, "aggregate_goodput")
        assert 0.0 <= p["collision_fraction"] < 1.0, (name, "collision_fraction")
        assert 0.0 <= p["idle_fraction"] < 1.0, (name, "idle_fraction")
        assert 0.0 < p["jain_index"] <= 1.0, (name, "jain_index")
        assert p["attempts"] > 0, (name, "attempts")
        assert p["packets_per_sec"] > 0, (name, "packets_per_sec")
        assert p["mean_secs"] > 0, (name, "mean_secs")
    tdma = next(p for p in doc["policies"] if p["policy"] == "tdma")
    assert tdma["collision_fraction"] == 0.0, "the TDMA oracle must be collision-free"


def check_harq_sweep(doc):
    """ARQ vs Chase vs incremental-redundancy goodput, plus the dominance
    contract the HARQ feature exists for: soft combining never loses
    goodput to plain ARQ at any swept SNR, and redundancy-bearing
    retransmissions beat repetition at the lowest (most lossy) point."""
    for key in ("payload_bits", "packets"):
        assert doc[key] > 0, key
    snrs = doc["snrs_db"]
    assert snrs == sorted(snrs) and len(snrs) >= 2, snrs
    links = {l["link"]: l for l in doc["links"]}
    assert set(links) == {"arq", "harq-cc", "harq-ir"}, set(links)
    for name, link in links.items():
        assert link["mean_secs"] > 0, (name, "mean_secs")
        points = link["points"]
        assert [p["snr_db"] for p in points] == snrs, (name, "snr grid")
        for p in points:
            assert 0.0 <= p["goodput"] <= 1.0, (name, p["snr_db"], "goodput")
            assert 0.0 <= p["delivery_rate"] <= 1.0, (name, p["snr_db"], "delivery_rate")
    for harq in ("harq-cc", "harq-ir"):
        for p in links[harq]["points"]:
            hist_total = sum(p["attempts_hist"])
            assert hist_total == doc["packets"], (harq, p["snr_db"], "attempts_hist")
            assert p["mean_attempts"] >= 1.0, (harq, p["snr_db"], "mean_attempts")
            assert p["mean_effective_rate"] > 0.0, (harq, p["snr_db"], "effective rate")
    arq, cc, ir = (links[n]["points"] for n in ("arq", "harq-cc", "harq-ir"))
    for a, c, i in zip(arq, cc, ir):
        snr = a["snr_db"]
        assert c["goodput"] > a["goodput"], (snr, "Chase combining must beat ARQ")
        assert i["goodput"] >= c["goodput"], (snr, "IR must never lose to Chase")
        assert i["mean_effective_rate"] <= c["mean_effective_rate"], (
            snr,
            "IR retransmissions must not raise the effective code rate",
        )
    assert ir[0]["goodput"] > cc[0]["goodput"], "IR must beat Chase at the lowest SNR"
    assert ir[0]["mean_effective_rate"] < cc[0]["mean_effective_rate"], (
        "IR must actually lower the code rate where it retransmits"
    )
    assert cc[0]["recovered_fraction"] > 0.0, "combining never decided a packet"


def check_sweep_service(doc):
    """Memoized result store + confidence-driven stopping economics."""
    assert doc["grid_points"] > 0
    assert doc["packets_per_point"] > 0
    assert doc["cold_mean_secs"] > 0
    assert doc["warm_mean_secs"] > 0
    assert doc["warm_speedup"] > 1.0, "a warm cache must beat re-simulating"
    assert doc["warm_hits"] == doc["grid_points"], "every warm point must be a hit"
    budget = doc["grid_points"] * doc["packets_per_point"]
    assert doc["warm_packets_saved"] == budget, "warm runs must save the whole budget"
    by_mode = {s["mode"]: s for s in doc["stopping"]}
    assert set(by_mode) == {"fixed", "adaptive"}, set(by_mode)
    for s in doc["stopping"]:
        assert s["mean_secs"] > 0, (s["mode"], "mean_secs")
    assert by_mode["fixed"]["packets_simulated"] == budget, "fixed mode must spend the budget"
    assert 0 < by_mode["adaptive"]["packets_simulated"] <= budget, (
        "the stopping rule must never exceed the fixed budget"
    )


SCHEMAS = {
    "perf_trellis": check_perf_trellis,
    "perf_batch": check_perf_batch,
    "perf_phy": check_perf_phy,
    "cell_sweep": check_cell_sweep,
    "harq_sweep": check_harq_sweep,
    "sweep_service": check_sweep_service,
}

# Keys that name the series an element of a JSON list belongs to; used by
# --compare to report "missing series" rather than positional noise.
IDENTITY_KEYS = ("decoder", "op", "modulation", "policy", "link", "mode", "snr_db")


def _type_class(v):
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"  # int vs float is formatting, not schema
    if isinstance(v, str):
        return "string"
    if isinstance(v, list):
        return "list"
    if isinstance(v, dict):
        return "object"
    return "null"


def _identity_key(elements):
    """The first identity key present in every element, if any."""
    for key in IDENTITY_KEYS:
        if all(isinstance(e, dict) and key in e for e in elements):
            return key
    return None


def structure_diff(fresh, committed, path, errors):
    """Recursively records structural mismatches (never compares numbers)."""
    fc, cc = _type_class(fresh), _type_class(committed)
    if fc != cc:
        errors.append(f"{path}: type {fc} != committed {cc}")
        return
    if fc == "object":
        missing = sorted(set(committed) - set(fresh))
        extra = sorted(set(fresh) - set(committed))
        if missing:
            errors.append(f"{path}: missing keys {missing}")
        if extra:
            errors.append(f"{path}: unexpected keys {extra}")
        for k in sorted(set(fresh) & set(committed)):
            structure_diff(fresh[k], committed[k], f"{path}.{k}", errors)
    elif fc == "list":
        if not committed:
            return
        ident = _identity_key(committed)
        if ident is not None:
            want = {e[ident] for e in committed}
            got = {e[ident] for e in fresh if isinstance(e, dict) and ident in e}
            if got != want:
                lost = sorted(map(repr, want - got))
                if lost:
                    errors.append(f"{path}: missing series {ident}={lost}")
                new = sorted(map(repr, got - want))
                if new:
                    errors.append(f"{path}: unexpected series {ident}={new}")
            by_id = {e[ident]: e for e in fresh if isinstance(e, dict) and ident in e}
            for ce in committed:
                fe = by_id.get(ce[ident])
                if fe is not None:
                    structure_diff(fe, ce, f"{path}[{ident}={ce[ident]!r}]", errors)
        else:
            if len(fresh) != len(committed):
                errors.append(f"{path}: {len(fresh)} elements != committed {len(committed)}")
            for i, fe in enumerate(fresh):
                structure_diff(fe, committed[0], f"{path}[{i}]", errors)


def main(argv):
    args = list(argv[1:])
    compare = None
    if "--compare" in args:
        i = args.index("--compare")
        if i + 1 >= len(args):
            print("check_bench.py: --compare needs a committed JSON path", file=sys.stderr)
            return 2
        compare = args[i + 1]
        del args[i : i + 2]
    if len(args) != 2:
        names = ", ".join(sorted(SCHEMAS))
        print(
            f"usage: check_bench.py <{names}> <path-to-json> [--compare <committed.json>]",
            file=sys.stderr,
        )
        return 2
    name, path = args
    if name not in SCHEMAS:
        print(
            f"check_bench.py: unknown bench table '{name}' "
            f"(known: {', '.join(sorted(SCHEMAS))}) — refusing to skip the schema check",
            file=sys.stderr,
        )
        return 2
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == name, (doc.get("bench"), name)
    SCHEMAS[name](doc)
    print(f"{path}: {name} schema OK")
    if compare is not None:
        with open(compare) as f:
            committed = json.load(f)
        errors = []
        structure_diff(doc, committed, "$", errors)
        if errors:
            print(f"{path}: schema drift against {compare}:", file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
            return 1
        print(f"{path}: structure matches committed {compare}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
