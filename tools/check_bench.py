#!/usr/bin/env python3
"""Schema checks for the repo's BENCH_*.json perf-trajectory artifacts.

One check table per bench, so CI can validate every trajectory file a
bench smoke emits and a refactor cannot silently change the format the
downstream tooling reads:

    python3 tools/check_bench.py perf_trellis /tmp/BENCH_trellis.json
    python3 tools/check_bench.py perf_phy    /tmp/BENCH_phy.json
    python3 tools/check_bench.py cell_sweep  /tmp/BENCH_cell.json
    python3 tools/check_bench.py harq_sweep  /tmp/BENCH_harq.json
"""

import json
import sys


def check_perf_trellis(doc):
    """Compiled-vs-reference decode throughput plus grid packets/s."""
    assert doc["coded_bits_per_block"] > 0
    decoders = {d["decoder"] for d in doc["decoders"]}
    assert decoders == {"viterbi", "sova", "bcjr"}, decoders
    for d in doc["decoders"]:
        for key in (
            "compiled_mbps",
            "reference_mbps",
            "speedup",
            "compiled_mean_secs",
            "reference_mean_secs",
        ):
            assert d[key] > 0, (d["decoder"], key)
    grid = doc["grid"]
    for key in ("scenarios", "packets_total", "batch_width", "packets_per_sec", "mean_secs"):
        assert grid[key] > 0, key


def check_perf_batch(doc):
    """Lockstep batch decode and batched RX pipeline vs scalar."""
    assert doc["batch_width"] > 1, "a batch of one lane measures nothing"
    assert doc["coded_bits_per_block"] > 0
    assert doc["payload_bits"] > 0
    for section in ("decoders", "rx"):
        names = {d["decoder"] for d in doc[section]}
        assert names == {"viterbi", "sova", "bcjr"}, (section, names)
    for d in doc["decoders"]:
        for key in ("batch_mbps", "scalar_mbps", "speedup", "batch_mean_secs", "scalar_mean_secs"):
            assert d[key] > 0, (d["decoder"], key)
    for r in doc["rx"]:
        for key in ("batch_pps", "scalar_pps", "speedup", "batch_mean_secs", "scalar_mean_secs"):
            assert r[key] > 0, (r["decoder"], key)


def check_perf_phy(doc):
    """Planned-vs-reference front-end throughput plus grid packets/s."""
    assert doc["symbols"] > 0
    assert doc["samples_per_symbol"] == 80
    ops = {o["op"] for o in doc["ofdm"]}
    assert ops == {"modulate", "demodulate"}, ops
    for o in doc["ofdm"]:
        for key in (
            "planned_msps",
            "reference_msps",
            "speedup",
            "planned_mean_secs",
            "reference_mean_secs",
        ):
            assert o[key] > 0, (o["op"], key)
    modulations = {m["modulation"] for m in doc["modulations"]}
    assert modulations == {"bpsk", "qpsk", "qam16", "qam64"}, modulations
    for m in doc["modulations"]:
        for key in (
            "map_planned_mbps",
            "map_reference_mbps",
            "map_speedup",
            "demap_planned_mbps",
            "demap_reference_mbps",
            "demap_speedup",
        ):
            assert m[key] > 0, (m["modulation"], key)
    grid = doc["grid"]
    for key in ("scenarios", "packets_total", "packets_per_sec", "mean_secs"):
        assert grid[key] > 0, key


def check_cell_sweep(doc):
    """Per-policy contention-cell goodput and throughput."""
    for key in ("nodes", "slots", "payload_bits"):
        assert doc[key] > 0, key
    policies = {p["policy"] for p in doc["policies"]}
    assert policies == {"aloha", "csma", "tdma"}, policies
    for p in doc["policies"]:
        name = p["policy"]
        assert 0.0 < p["aggregate_goodput"] <= 1.0, (name, "aggregate_goodput")
        assert 0.0 <= p["collision_fraction"] < 1.0, (name, "collision_fraction")
        assert 0.0 <= p["idle_fraction"] < 1.0, (name, "idle_fraction")
        assert 0.0 < p["jain_index"] <= 1.0, (name, "jain_index")
        assert p["attempts"] > 0, (name, "attempts")
        assert p["packets_per_sec"] > 0, (name, "packets_per_sec")
        assert p["mean_secs"] > 0, (name, "mean_secs")
    tdma = next(p for p in doc["policies"] if p["policy"] == "tdma")
    assert tdma["collision_fraction"] == 0.0, "the TDMA oracle must be collision-free"


def check_harq_sweep(doc):
    """ARQ vs Chase vs incremental-redundancy goodput, plus the dominance
    contract the HARQ feature exists for: soft combining never loses
    goodput to plain ARQ at any swept SNR, and redundancy-bearing
    retransmissions beat repetition at the lowest (most lossy) point."""
    for key in ("payload_bits", "packets"):
        assert doc[key] > 0, key
    snrs = doc["snrs_db"]
    assert snrs == sorted(snrs) and len(snrs) >= 2, snrs
    links = {l["link"]: l for l in doc["links"]}
    assert set(links) == {"arq", "harq-cc", "harq-ir"}, set(links)
    for name, link in links.items():
        assert link["mean_secs"] > 0, (name, "mean_secs")
        points = link["points"]
        assert [p["snr_db"] for p in points] == snrs, (name, "snr grid")
        for p in points:
            assert 0.0 <= p["goodput"] <= 1.0, (name, p["snr_db"], "goodput")
            assert 0.0 <= p["delivery_rate"] <= 1.0, (name, p["snr_db"], "delivery_rate")
    for harq in ("harq-cc", "harq-ir"):
        for p in links[harq]["points"]:
            hist_total = sum(p["attempts_hist"])
            assert hist_total == doc["packets"], (harq, p["snr_db"], "attempts_hist")
            assert p["mean_attempts"] >= 1.0, (harq, p["snr_db"], "mean_attempts")
            assert p["mean_effective_rate"] > 0.0, (harq, p["snr_db"], "effective rate")
    arq, cc, ir = (links[n]["points"] for n in ("arq", "harq-cc", "harq-ir"))
    for a, c, i in zip(arq, cc, ir):
        snr = a["snr_db"]
        assert c["goodput"] > a["goodput"], (snr, "Chase combining must beat ARQ")
        assert i["goodput"] >= c["goodput"], (snr, "IR must never lose to Chase")
        assert i["mean_effective_rate"] <= c["mean_effective_rate"], (
            snr,
            "IR retransmissions must not raise the effective code rate",
        )
    assert ir[0]["goodput"] > cc[0]["goodput"], "IR must beat Chase at the lowest SNR"
    assert ir[0]["mean_effective_rate"] < cc[0]["mean_effective_rate"], (
        "IR must actually lower the code rate where it retransmits"
    )
    assert cc[0]["recovered_fraction"] > 0.0, "combining never decided a packet"


SCHEMAS = {
    "perf_trellis": check_perf_trellis,
    "perf_batch": check_perf_batch,
    "perf_phy": check_perf_phy,
    "cell_sweep": check_cell_sweep,
    "harq_sweep": check_harq_sweep,
}


def main(argv):
    if len(argv) != 3 or argv[1] not in SCHEMAS:
        names = ", ".join(sorted(SCHEMAS))
        print(f"usage: check_bench.py <{names}> <path-to-json>", file=sys.stderr)
        return 2
    name, path = argv[1], argv[2]
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == name, (doc.get("bench"), name)
    SCHEMAS[name](doc)
    print(f"{path}: {name} schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
