//! Property-based integration tests spanning crates.

use proptest::prelude::*;
use wilis::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full system is the identity on a clean channel for any payload,
    /// rate and decoder choice.
    #[test]
    fn system_identity_on_clean_channel(
        rate_idx in 0usize..8,
        dec_idx in 0usize..3,
        payload in proptest::collection::vec(0u8..2, 1..600),
        seed in 1u8..0x80,
    ) {
        let rate = PhyRate::all()[rate_idx];
        let name = ["viterbi", "sova", "bcjr"][dec_idx];
        let system = WilisSystem::new();
        let cfg = SystemConfig::new(rate, name);
        let tx = system.transmitter(&cfg).transmit(&payload, seed);
        let mut rx = system.receiver(&cfg).unwrap();
        let got = rx.receive(&tx.samples, payload.len(), seed);
        prop_assert_eq!(got.bit_errors(&payload), 0);
    }

    /// Hints are always within the 6-bit range and accompany every payload
    /// bit, noisy or not.
    #[test]
    fn hints_are_total_and_bounded(
        snr_db in -2.0f64..30.0,
        chan_seed in any::<u64>(),
    ) {
        let rate = PhyRate::Qam16Half;
        let payload: Vec<u8> = (0..400).map(|i| ((i * 3) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(snr_db), chan_seed).apply(&mut samples);
        let got = Receiver::sova(rate).receive(&samples, payload.len(), 0x5D);
        prop_assert_eq!(got.hints.len(), payload.len());
        prop_assert!(got.hints.iter().all(|&h| h <= 63));
    }

    /// The replay channel makes rate trials commensurable: two different
    /// rates observe the identical fading gain at the same instant.
    #[test]
    fn replay_oracle_sees_one_channel(seed in any::<u64>(), start in 0u64..10_000_000) {
        let a = {
            let mut ch = ReplayChannel::fading(SnrDb::new(10.0), 20.0, 20e6, seed);
            ch.seek(start);
            ch.current_gain()
        };
        let b = {
            let mut ch = ReplayChannel::fading(SnrDb::new(10.0), 20.0, 20e6, seed);
            // A different trial consumed a different amount first.
            let mut sink = vec![Cplx::ONE; 1234];
            ch.apply(&mut sink);
            ch.seek(start);
            ch.current_gain()
        };
        prop_assert_eq!(a, b);
    }

    /// SoftRate's selected rate is always one of the eight table rates and
    /// moves by at most one step per observation.
    #[test]
    fn softrate_moves_one_step_at_a_time(pbers in proptest::collection::vec(0.0f64..0.2, 1..40)) {
        let mut sr = SoftRate::new(PhyRate::Qam16Half);
        let mut prev = sr.current();
        for pber in pbers {
            sr.observe(pber.max(1e-12));
            let cur = sr.current();
            let all = PhyRate::all();
            let pi = all.iter().position(|&r| r == prev).unwrap() as i64;
            let ci = all.iter().position(|&r| r == cur).unwrap() as i64;
            prop_assert!((pi - ci).abs() <= 1, "jumped {prev} -> {cur}");
            prev = cur;
        }
    }

    /// Per-packet BER estimates are means of per-bit estimates: bounded by
    /// the worst and best bin of the table, for any hint mix.
    #[test]
    fn pber_bounded_by_table_extremes(hints in proptest::collection::vec(0u16..64, 1..500)) {
        let est = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Bcjr);
        let pber = est.per_packet(&hints);
        prop_assert!(pber <= est.per_bit(0) + 1e-15);
        prop_assert!(pber >= est.per_bit(63) - 1e-15);
    }
}
