//! Randomized integration tests spanning crates (deterministic,
//! self-seeded — the offline analog of a proptest suite).

use wilis::fxp::rng::SmallRng;
use wilis::prelude::*;

/// The full system is the identity on a clean channel for any payload,
/// rate and decoder choice.
#[test]
fn system_identity_on_clean_channel() {
    let mut rng = SmallRng::seed_from_u64(0xCC1);
    let system = WilisSystem::new();
    for _ in 0..16 {
        let rate = PhyRate::all()[rng.gen_i64(0, 7) as usize];
        let name = ["viterbi", "sova", "bcjr"][rng.gen_i64(0, 2) as usize];
        let n = rng.gen_i64(1, 599) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.gen_bit()).collect();
        let seed = rng.gen_i64(1, 0x7F) as u8;
        let cfg = SystemConfig::new(rate, name);
        let tx = system.transmitter(&cfg).transmit(&payload, seed);
        let mut rx = system.receiver(&cfg).unwrap();
        let got = rx.receive(&tx.samples, payload.len(), seed);
        assert_eq!(got.bit_errors(&payload), 0);
    }
}

/// Hints are always within the 6-bit range and accompany every payload
/// bit, noisy or not.
#[test]
fn hints_are_total_and_bounded() {
    let mut rng = SmallRng::seed_from_u64(0xCC2);
    for _ in 0..16 {
        let snr_db = rng.gen_range(-2.0..30.0);
        let chan_seed = rng.next_u64();
        let rate = PhyRate::Qam16Half;
        let payload: Vec<u8> = (0..400).map(|i| ((i * 3) % 2) as u8).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(snr_db), chan_seed).apply(&mut samples);
        let got = Receiver::sova(rate).receive(&samples, payload.len(), 0x5D);
        assert_eq!(got.hints.len(), payload.len());
        assert!(got.hints.iter().all(|&h| h <= 63));
    }
}

/// The replay channel makes rate trials commensurable: two different
/// trials observe the identical fading gain at the same instant.
#[test]
fn replay_oracle_sees_one_channel() {
    let mut rng = SmallRng::seed_from_u64(0xCC3);
    for _ in 0..16 {
        let seed = rng.next_u64();
        let start = rng.gen_i64(0, 10_000_000) as u64;
        let a = {
            let mut ch = ReplayChannel::fading(SnrDb::new(10.0), 20.0, 20e6, seed);
            ch.seek(start);
            ch.current_gain()
        };
        let b = {
            let mut ch = ReplayChannel::fading(SnrDb::new(10.0), 20.0, 20e6, seed);
            // A different trial consumed a different amount first.
            let mut sink = vec![Cplx::ONE; 1234];
            ch.apply(&mut sink);
            ch.seek(start);
            ch.current_gain()
        };
        assert_eq!(a, b);
    }
}

/// SoftRate's selected rate is always one of the eight table rates and
/// moves by at most one step per observation.
#[test]
fn softrate_moves_one_step_at_a_time() {
    let mut rng = SmallRng::seed_from_u64(0xCC4);
    for _ in 0..16 {
        let mut sr = SoftRate::new(PhyRate::Qam16Half);
        let mut prev = sr.current();
        let n = rng.gen_i64(1, 40) as usize;
        for _ in 0..n {
            let pber = rng.gen_range(0.0..0.2);
            sr.observe(pber.max(1e-12));
            let cur = sr.current();
            let all = PhyRate::all();
            let pi = all.iter().position(|&r| r == prev).unwrap() as i64;
            let ci = all.iter().position(|&r| r == cur).unwrap() as i64;
            assert!((pi - ci).abs() <= 1, "jumped {prev} -> {cur}");
            prev = cur;
        }
    }
}

/// Per-packet BER estimates are means of per-bit estimates: bounded by
/// the worst and best bin of the table, for any hint mix.
#[test]
fn pber_bounded_by_table_extremes() {
    let mut rng = SmallRng::seed_from_u64(0xCC5);
    let est = BerEstimator::analytic(Modulation::Qam16, DecoderKind::Bcjr);
    for _ in 0..16 {
        let n = rng.gen_i64(1, 500) as usize;
        let hints: Vec<u16> = (0..n).map(|_| rng.gen_i64(0, 63) as u16).collect();
        let pber = est.per_packet(&hints);
        assert!(pber <= est.per_bit(0) + 1e-15);
        assert!(pber >= est.per_bit(63) - 1e-15);
    }
}
