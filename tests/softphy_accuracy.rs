//! Integration: the SoftPHY estimation chain is accurate end to end.

use wilis::prelude::*;
use wilis::softphy::{calibrate_hints, CalibrationConfig};

#[test]
fn hints_rank_actual_errors() {
    // The defining SoftPHY property: bits with low hints are wrong far
    // more often than bits with high hints.
    let cal = calibrate_hints(&CalibrationConfig::new(
        PhyRate::Qam16Half,
        DecoderKind::Bcjr,
        SnrDb::new(7.0),
        120_000,
    ));
    let low: (u64, u64) = cal.bins[..8]
        .iter()
        .fold((0, 0), |(b, e), bin| (b + bin.bits, e + bin.errors));
    let high: (u64, u64) = cal.bins[32..]
        .iter()
        .fold((0, 0), |(b, e), bin| (b + bin.bits, e + bin.errors));
    assert!(low.0 > 0 && high.0 > 0, "both ranges populated");
    let low_ber = low.1 as f64 / low.0 as f64;
    let high_ber = (high.1 as f64 + 0.5) / high.0 as f64; // +0.5: may be zero
    assert!(
        low_ber > 20.0 * high_ber,
        "low-hint BER {low_ber:.2e} vs high-hint {high_ber:.2e}"
    );
}

#[test]
fn per_packet_estimates_order_packets_by_quality() {
    // Across an SNR sweep, the mean predicted PBER must fall as the
    // channel improves - and so must the actual PBER.
    let rate = PhyRate::Qam16Half;
    let est = BerEstimator::analytic(rate.modulation(), DecoderKind::Sova);
    let mut rows = Vec::new();
    for snr_db in [6.0, 7.0, 8.5] {
        let mut channel = AwgnChannel::new(SnrDb::new(snr_db), 31);
        let mut rx = wilis::softphy::calibrate::receiver_for(
            rate,
            DecoderKind::Sova,
            wilis::softphy::ScalingFactors::hint_demapper_bits(rate.modulation()),
        );
        let mut predicted = 0.0;
        let mut actual = 0.0;
        let packets = 25;
        for p in 0..packets {
            let payload: Vec<u8> = (0..1704).map(|i| ((i * 7 + p) % 2) as u8).collect();
            let seed = (p % 127 + 1) as u8;
            let tx = Transmitter::new(rate).transmit(&payload, seed);
            let mut samples = tx.samples;
            channel.apply(&mut samples);
            let got = rx.receive(&samples, payload.len(), seed);
            predicted += est.per_packet(&got.hints);
            actual += got.bit_errors(&payload) as f64 / payload.len() as f64;
        }
        rows.push((predicted / packets as f64, actual / packets as f64));
    }
    for w in rows.windows(2) {
        assert!(
            w[1].0 < w[0].0,
            "predicted PBER must fall with SNR: {rows:?}"
        );
        assert!(w[1].1 <= w[0].1, "actual PBER must fall with SNR: {rows:?}");
    }
    // And predictions are within an order of magnitude of reality at the
    // noisy end (the paper's Figure 6 cluster-around-the-line property).
    let (pred, act) = rows[0];
    assert!(
        pred / act < 12.0 && act / pred < 12.0,
        "predicted {pred:.2e} vs actual {act:.2e}"
    );
}

#[test]
fn estimator_tables_agree_with_measured_curves() {
    // Build an estimator from a measured fit and compare against the
    // analytic constant-SNR table at the same operating point: they should
    // agree within an order of magnitude over the mid-hint range.
    let modulation = Modulation::Qam16;
    let cal = calibrate_hints(&CalibrationConfig::new(
        PhyRate::Qam16Half,
        DecoderKind::Bcjr,
        wilis::softphy::ScalingFactors::mid_snr(modulation),
        150_000,
    ));
    let fit = cal.fit.expect("mid-SNR run has errors to fit");
    let measured = BerEstimator::from_fit(modulation, DecoderKind::Bcjr, &fit);
    let analytic = BerEstimator::analytic(modulation, DecoderKind::Bcjr);
    for hint in (6..=30).step_by(6) {
        let m = measured.per_bit(hint);
        let a = analytic.per_bit(hint);
        assert!(
            m / a < 30.0 && a / m < 30.0,
            "hint {hint}: measured {m:.2e} vs analytic {a:.2e}"
        );
    }
}

#[test]
fn bcjr_hints_discriminate_at_least_as_well_as_sova() {
    // §4.4: "BCJR produces superior BER estimates". Compare fitted slopes
    // at the same operating point: steeper (more negative) = more
    // discriminating hints.
    let cfg = |d| CalibrationConfig::new(PhyRate::Qam16Half, d, SnrDb::new(7.25), 400_000);
    let sova = calibrate_hints(&cfg(DecoderKind::Sova));
    let bcjr = calibrate_hints(&cfg(DecoderKind::Bcjr));
    let (s, b) = (
        sova.fit.expect("sova fit").slope,
        bcjr.fit.expect("bcjr fit").slope,
    );
    assert!(
        b <= s + 0.01,
        "BCJR slope {b:.4} should not be flatter than SOVA {s:.4}"
    );
}
