//! Contention-cell acceptance properties: the cell dimension must be a
//! *strict generalization* of the point-to-point engine (a 1-node CSMA
//! cell reproduces the `ArqLink` path bit for bit), and the TDMA oracle
//! must bound every contending policy from above with zero collisions.

use wilis::phy::PhyRate;
use wilis::scenario::{ScenarioResult, SweepGrid, SweepRunner};

/// Runs a single-scenario grid and returns its result.
fn run_one(grid: SweepGrid) -> ScenarioResult {
    let scenarios = grid.scenarios();
    assert_eq!(scenarios.len(), 1);
    SweepRunner::new(1).run(&scenarios).unwrap().remove(0)
}

/// The strict-generalization property, as a self-seeded property test
/// over operating points: a 1-node CSMA cell has nothing to contend with,
/// so its attempt `a` draws exactly the seeds point-to-point packet `a`
/// draws — every PHY statistic and every ARQ counter must be
/// bit-identical to a p2p run of the same length.
#[test]
fn one_node_csma_cell_reproduces_p2p_arq_bit_for_bit() {
    // Span clean, waterfall, and lossy operating points and several
    // Monte-Carlo replicas: the equivalence must hold everywhere,
    // including where decode failures drive ARQ retransmissions and CSMA
    // backoff (which only changes *when* attempts happen, never what any
    // attempt contains).
    for &(snr_db, seed) in &[(30.0, 1u64), (9.0, 2), (6.5, 3), (5.5, 7), (9.0, 99)] {
        let slots = 12u32;
        let cell = run_one(
            SweepGrid::new()
                .decoders(&["bcjr"])
                .links(&["arq"])
                .contentions(&["csma"])
                .nodes(1)
                .snrs_db(&[snr_db])
                .seeds(&[seed])
                .packets(slots)
                .payload_bits(300),
        );
        let c = cell.cell.as_ref().expect("cell metrics");
        assert_eq!(c.collision_slots, 0, "a lone node cannot collide");
        let attempts = c.attempts();
        assert!(attempts >= 1, "a saturated lone node must transmit");
        assert_eq!(
            cell.packets, attempts,
            "every lone-node attempt reaches the receiver"
        );

        // The p2p reference run, one packet per cell attempt.
        let p2p = run_one(
            SweepGrid::new()
                .decoders(&["bcjr"])
                .links(&["arq"])
                .snrs_db(&[snr_db])
                .seeds(&[seed])
                .packets(attempts as u32)
                .payload_bits(300),
        );

        let point = format!("@{snr_db}dB seed{seed}");
        assert_eq!(cell.packets, p2p.packets, "{point}");
        assert_eq!(cell.bits, p2p.bits, "{point}");
        assert_eq!(cell.bit_errors, p2p.bit_errors, "{point}");
        assert_eq!(cell.packet_errors, p2p.packet_errors, "{point}");
        assert_eq!(cell.hint_bins, p2p.hint_bins, "{point}");
        assert_eq!(
            cell.predicted_pber_sum.to_bits(),
            p2p.predicted_pber_sum.to_bits(),
            "{point}"
        );
        assert_eq!(
            cell.link.expect("cell arq metrics"),
            p2p.link.expect("p2p arq metrics"),
            "{point}: the contention layer must be a strict generalization"
        );
    }
}

/// Saturated contention shoot-out at one operating point, all three
/// policies on the identical cell.
fn shootout(contention: &str, snr_db: f64) -> ScenarioResult {
    run_one(
        SweepGrid::new()
            .rates(&[PhyRate::Qam16Half])
            .decoders(&["bcjr"])
            .contentions(&[contention])
            .nodes(4)
            .snrs_db(&[snr_db])
            .packets(80)
            .payload_bits(256),
    )
}

#[test]
fn tdma_oracle_never_collides_and_bounds_contending_goodput() {
    for &snr_db in &[9.0, 12.0] {
        let tdma = shootout("tdma", snr_db);
        let t = tdma.cell.as_ref().expect("tdma cell");
        assert_eq!(
            t.collision_slots, 0,
            "TDMA is collision-free by construction"
        );
        assert_eq!(t.capture_slots, 0);
        assert_eq!(t.idle_slots, 0, "saturated TDMA uses every slot");
        let per_node_collisions: u64 = t.per_node.iter().map(|n| n.collisions).sum();
        assert_eq!(per_node_collisions, 0);

        for contending in ["aloha", "csma"] {
            let r = shootout(contending, snr_db);
            let c = r.cell.as_ref().expect("contending cell");
            assert!(
                t.aggregate_goodput() >= c.aggregate_goodput(),
                "@{snr_db}dB: TDMA {:.3} must bound {contending} {:.3}",
                t.aggregate_goodput(),
                c.aggregate_goodput()
            );
        }
    }
}

#[test]
fn tdma_round_robin_is_perfectly_fair() {
    // 80 slots over 4 nodes: 20 each, identical delivery odds per node at
    // a clean SNR — Jain's index must be exactly 1.
    let tdma = shootout("tdma", 30.0);
    let c = tdma.cell.as_ref().expect("cell metrics");
    assert!((c.jain_index() - 1.0).abs() < 1e-12);
    assert!((c.aggregate_goodput() - 1.0).abs() < 1e-12);
}

#[test]
fn contention_costs_goodput_but_carrier_sense_recovers_some() {
    // The classic ordering on a saturated cell at a clean SNR: ALOHA
    // burns slots on collisions, CSMA defers around them, TDMA wastes
    // nothing.
    let aloha = shootout("aloha", 12.0);
    let csma = shootout("csma", 12.0);
    let tdma = shootout("tdma", 12.0);
    let (a, c, t) = (
        aloha.cell.as_ref().unwrap().aggregate_goodput(),
        csma.cell.as_ref().unwrap().aggregate_goodput(),
        tdma.cell.as_ref().unwrap().aggregate_goodput(),
    );
    assert!(
        a < c && c <= t,
        "expected ALOHA {a:.3} < CSMA {c:.3} <= TDMA {t:.3}"
    );
    assert!(
        aloha.cell.as_ref().unwrap().collision_fraction()
            > csma.cell.as_ref().unwrap().collision_fraction(),
        "carrier sense must cut the collision fraction"
    );
}

#[test]
fn cell_results_are_reproducible_across_runs() {
    let grid = || {
        SweepGrid::new()
            .contentions(&["csma"])
            .links(&["arq"])
            .nodes(3)
            .snrs_db(&[8.0])
            .packets(30)
            .payload_bits(256)
            .scenarios()
    };
    let a = SweepRunner::new(2).run(&grid()).unwrap();
    let b = SweepRunner::new(2).run(&grid()).unwrap();
    assert_eq!(a, b);
}
