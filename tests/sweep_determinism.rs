//! The scenario engine's headline contract: a sweep grid produces
//! bit-identical results for any worker count — the whole-stack analog of
//! the `apply_awgn_parallel` doctest at the channel layer.

use wilis::phy::PhyRate;
use wilis::scenario::{SweepGrid, SweepRunner};

/// A Figure-5-style grid: the three paper configurations (QAM-16 at the
/// waterfall midpoint, QPSK at its midpoint, QAM-16 one dB up), both soft
/// decoders, a couple of seeds.
fn fig5_style_grid() -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["sova", "bcjr"])
        .snrs_db(&[6.0, 8.0])
        .seeds(&[1, 2])
        .packets(3)
        .payload_bits(600)
}

#[test]
fn grid_results_identical_at_1_2_and_8_threads() {
    let scenarios = fig5_style_grid().scenarios();
    assert_eq!(scenarios.len(), 16);
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [2, 8] {
        let got = SweepRunner::new(threads).run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread sweep diverged from the serial reference"
        );
    }
}

#[test]
fn ber_is_bit_identical_not_just_close() {
    // Spell the contract out: identical error *counts* and identical hint
    // bins, not merely matching floating-point BER.
    let scenarios = fig5_style_grid().scenarios();
    let a = SweepRunner::new(1).run(&scenarios).unwrap();
    let b = SweepRunner::new(8).run(&scenarios).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.bit_errors, y.bit_errors, "{}", x.label);
        assert_eq!(x.packet_errors, y.packet_errors, "{}", x.label);
        assert_eq!(x.hint_bins, y.hint_bins, "{}", x.label);
        assert_eq!(
            x.predicted_pber_sum.to_bits(),
            y.predicted_pber_sum.to_bits(),
            "{}",
            x.label
        );
    }
}

/// The acceptance grid of the link-layer integration: (rate × SNR × link)
/// with every stock policy plus the PHY-only baseline on the link axis.
fn link_grid() -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["bcjr"])
        .links(&["none", "arq", "ppr", "softrate"])
        .snrs_db(&[6.0, 9.0])
        .packets(3)
        .payload_bits(400)
}

#[test]
fn link_grid_results_identical_at_1_2_and_8_threads() {
    let scenarios = link_grid().scenarios();
    assert_eq!(scenarios.len(), 16);
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [2, 8] {
        let got = SweepRunner::new(threads).run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread link sweep diverged from the serial reference"
        );
    }
}

#[test]
fn link_metrics_are_bit_identical_not_just_close() {
    // The link dimension inherits the engine's contract: identical
    // counters and bit-identical floating-point summaries, including the
    // SoftRate policy whose oracle replays every rate per packet.
    let scenarios = link_grid().scenarios();
    let a = SweepRunner::new(1).run(&scenarios).unwrap();
    let b = SweepRunner::new(8).run(&scenarios).unwrap();
    let mut linked = 0;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.link.is_some(), y.link.is_some(), "{}", x.label);
        let (Some(mx), Some(my)) = (&x.link, &y.link) else {
            continue;
        };
        linked += 1;
        assert_eq!(mx.packets, my.packets, "{}", x.label);
        assert_eq!(mx.delivered, my.delivered, "{}", x.label);
        assert_eq!(mx.gave_up, my.gave_up, "{}", x.label);
        assert_eq!(mx.bits_transmitted, my.bits_transmitted, "{}", x.label);
        assert_eq!(mx.bits_retransmitted, my.bits_retransmitted, "{}", x.label);
        assert_eq!(
            (mx.under, mx.accurate, mx.over),
            (my.under, my.accurate, my.over),
            "{}",
            x.label
        );
        assert_eq!(
            mx.selected_mbps_sum.to_bits(),
            my.selected_mbps_sum.to_bits(),
            "{}",
            x.label
        );
    }
    assert_eq!(linked, 12, "three link policies across four grid corners");
}

#[test]
fn non_adapting_links_leave_the_phy_results_untouched() {
    // ARQ and PPR observe packets but never steer the transmitter, so at
    // the same grid point every PHY-side field must match the PHY-only
    // ("none") scenario byte for byte — the link layer is a pure observer
    // there. (SoftRate intentionally breaks this: it retunes the rate.)
    let runner = SweepRunner::new(2);
    let grid = |link: &str| {
        SweepGrid::new()
            .links(&[link])
            .snrs_db(&[6.0])
            .packets(4)
            .payload_bits(400)
            .scenarios()
    };
    let phy_only = runner.run(&grid("none")).unwrap();
    for link in ["arq", "ppr"] {
        let linked = runner.run(&grid(link)).unwrap();
        for (a, b) in phy_only.iter().zip(&linked) {
            assert_eq!(a.bit_errors, b.bit_errors, "{link}");
            assert_eq!(a.packet_errors, b.packet_errors, "{link}");
            assert_eq!(a.hint_bins, b.hint_bins, "{link}");
            assert_eq!(
                a.predicted_pber_sum.to_bits(),
                b.predicted_pber_sum.to_bits(),
                "{link}"
            );
            assert!(a.link.is_none() && b.link.is_some());
        }
    }
}

/// A grid built to maximize shared-channel job fusion: three decoders and
/// three non-adapting links over one (rate, channel, SNR, seed)
/// coordinate — nine scenarios, one channel realization.
fn fused_grid() -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["viterbi", "sova", "bcjr"])
        .links(&["none", "arq", "ppr"])
        .snrs_db(&[6.5])
        .packets(4)
        .payload_bits(300)
}

#[test]
fn shared_channel_groups_match_solo_execution() {
    // The engine fuses grid points differing only in decoder/link into
    // one shared transmit+channel job. Every per-scenario field must be
    // byte-identical to running that scenario through a grid of its own.
    let scenarios = fused_grid().scenarios();
    let fused = SweepRunner::new(2).run(&scenarios).unwrap();
    let solo_runner = SweepRunner::new(1);
    for (i, sc) in scenarios.iter().enumerate() {
        let solo = &solo_runner.run(std::slice::from_ref(sc)).unwrap()[0];
        assert_eq!(solo.label, fused[i].label);
        assert_eq!(solo.bit_errors, fused[i].bit_errors, "{}", solo.label);
        assert_eq!(solo.packet_errors, fused[i].packet_errors, "{}", solo.label);
        assert_eq!(solo.hint_bins, fused[i].hint_bins, "{}", solo.label);
        assert_eq!(
            solo.predicted_pber_sum.to_bits(),
            fused[i].predicted_pber_sum.to_bits(),
            "{}",
            solo.label
        );
        assert_eq!(solo.link, fused[i].link, "{}", solo.label);
    }
}

#[test]
fn batched_group_blocks_match_solo_for_every_width() {
    // The fused path decodes packet blocks of up to MAX_BATCH_LANES (8)
    // in lockstep. Sweep packet budgets that exercise every batch width:
    // full blocks of 1, 2, 4, and 8 lanes plus a ragged budget of 11,
    // which the balanced partition runs as 6 + 5 (never 8 + 3). At this
    // waterfall SNR blocks mix clean and errored lanes, and every worker
    // count must reproduce the packet-at-a-time solo path byte for byte.
    for packets in [1u32, 2, 4, 8, 11] {
        let scenarios = SweepGrid::new()
            .rates(&[PhyRate::Qam16Half])
            .decoders(&["viterbi", "sova", "bcjr"])
            .links(&["none", "arq"])
            .snrs_db(&[6.5])
            .packets(packets)
            .payload_bits(300)
            .scenarios();
        let solo_runner = SweepRunner::new(1);
        let solo: Vec<_> = scenarios
            .iter()
            .map(|sc| solo_runner.run(std::slice::from_ref(sc)).unwrap().remove(0))
            .collect();
        for threads in [1, 2, 8] {
            let fused = SweepRunner::new(threads).run(&scenarios).unwrap();
            for (s, f) in solo.iter().zip(&fused) {
                let at = format!("{}: {packets} packets, {threads} threads", s.label);
                assert_eq!(s.label, f.label, "{at}");
                assert_eq!(s.bit_errors, f.bit_errors, "{at}");
                assert_eq!(s.packet_errors, f.packet_errors, "{at}");
                assert_eq!(s.hint_bins, f.hint_bins, "{at}");
                assert_eq!(
                    s.predicted_pber_sum.to_bits(),
                    f.predicted_pber_sum.to_bits(),
                    "{at}"
                );
                assert_eq!(s.link, f.link, "{at}");
            }
        }
    }
}

#[test]
fn fused_grid_results_identical_at_1_2_and_8_threads() {
    // The thread-count contract holds with job fusion on the hot path.
    let scenarios = fused_grid().scenarios();
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [2, 8] {
        let got = SweepRunner::new(threads).run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread fused sweep diverged from the serial reference"
        );
    }
}

/// The cell-dimension acceptance grid: point-to-point plus all three
/// contention policies, with and without a link layer, across two SNRs.
fn cell_grid() -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["bcjr"])
        .links(&["none", "arq"])
        .contentions(&["p2p", "aloha", "csma", "tdma"])
        .nodes(3)
        .snrs_db(&[6.0, 9.0])
        .packets(6)
        .payload_bits(300)
}

#[test]
fn cell_grid_results_identical_at_1_2_and_8_threads() {
    let scenarios = cell_grid().scenarios();
    assert_eq!(scenarios.len(), 16);
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [2, 8] {
        let got = SweepRunner::new(threads).run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread cell sweep diverged from the serial reference"
        );
    }
}

#[test]
fn cell_metrics_are_bit_identical_not_just_close() {
    // The cell dimension inherits the engine's contract: identical slot
    // classifications, per-node counters, and bit-identical derived
    // figures (goodput, Jain index) for any worker count.
    let scenarios = cell_grid().scenarios();
    let a = SweepRunner::new(1).run(&scenarios).unwrap();
    let b = SweepRunner::new(8).run(&scenarios).unwrap();
    let mut cells = 0;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cell.is_some(), y.cell.is_some(), "{}", x.label);
        let (Some(cx), Some(cy)) = (&x.cell, &y.cell) else {
            continue;
        };
        cells += 1;
        assert_eq!(cx, cy, "{}", x.label);
        assert_eq!(
            cx.aggregate_goodput().to_bits(),
            cy.aggregate_goodput().to_bits(),
            "{}",
            x.label
        );
        assert_eq!(
            cx.jain_index().to_bits(),
            cy.jain_index().to_bits(),
            "{}",
            x.label
        );
    }
    assert_eq!(cells, 12, "three contention policies across four corners");
}

/// The HARQ acceptance grid: both soft-combining modes and the ARQ
/// baseline over a punctured and an unpunctured rate, straddling the
/// waterfall so retransmissions actually happen — solo attempt loops on
/// the point-to-point points and the HARQ cell path on the aloha points.
fn harq_grid() -> SweepGrid {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::Qam16ThreeQuarters])
        .decoders(&["bcjr"])
        .links(&["arq", "harq-cc", "harq-ir"])
        .contentions(&["p2p", "aloha"])
        .nodes(3)
        .snrs_db(&[6.0, 11.0])
        .packets(8)
        .payload_bits(400)
}

#[test]
fn harq_grid_results_identical_at_1_2_and_8_threads() {
    let scenarios = harq_grid().scenarios();
    assert_eq!(scenarios.len(), 24);
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [2, 8] {
        let got = SweepRunner::new(threads).run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread HARQ sweep diverged from the serial reference"
        );
    }
}

#[test]
fn harq_metrics_are_bit_identical_not_just_close() {
    // The stateful retry loop inherits the engine's contract: identical
    // attempt histograms and bit-identical effective-rate sums for any
    // worker count.
    let scenarios = harq_grid().scenarios();
    let a = SweepRunner::new(1).run(&scenarios).unwrap();
    let b = SweepRunner::new(8).run(&scenarios).unwrap();
    let mut combined = 0;
    for (x, y) in a.iter().zip(&b) {
        let (Some(mx), Some(my)) = (&x.link, &y.link) else {
            continue;
        };
        assert_eq!(mx.packets, my.packets, "{}", x.label);
        assert_eq!(mx.recovered, my.recovered, "{}", x.label);
        assert_eq!(mx.attempts_hist, my.attempts_hist, "{}", x.label);
        assert_eq!(
            mx.effective_rate_sum.to_bits(),
            my.effective_rate_sum.to_bits(),
            "{}",
            x.label
        );
        if mx.attempts_hist.iter().sum::<u64>() > 0 {
            combined += 1;
        }
    }
    assert!(
        combined >= 8,
        "the grid must exercise the combining paths, got {combined}"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same grid, same runner, different invocation: still identical —
    // nothing depends on wall time, thread ids, or allocator state.
    let scenarios = fig5_style_grid().scenarios();
    let runner = SweepRunner::new(4);
    assert_eq!(
        runner.run(&scenarios).unwrap(),
        runner.run(&scenarios).unwrap()
    );
}

#[test]
fn noisier_points_of_the_grid_have_higher_ber() {
    // Sanity on the physics while we are here: for each (rate, decoder),
    // the 6 dB point should be no better than the 8 dB point.
    let scenarios = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["bcjr"])
        .snrs_db(&[5.0, 9.0])
        .packets(20)
        .payload_bits(600)
        .scenarios();
    let results = SweepRunner::new(4).run(&scenarios).unwrap();
    assert!(
        results[0].ber() >= results[1].ber(),
        "5 dB BER {:.3e} < 9 dB BER {:.3e}",
        results[0].ber(),
        results[1].ber()
    );
}
