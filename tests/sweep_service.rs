//! Acceptance contracts of the sweep service: the memoized result store
//! serves repeated grid points without simulating a packet, warm results
//! are bit-identical to cold ones across any thread count and any
//! cold/warm split (via the JSON-lines disk store), and the
//! confidence-driven stopping rule is a pure function of the seed
//! schedule — same decisions for any worker count, same bits as a
//! fixed-budget run truncated at the stopping point.

use std::path::PathBuf;

use wilis::channel::SnrDb;
use wilis::experiment::{fig6, fig7};
use wilis::phy::PhyRate;
use wilis::scenario::{Scenario, StoppingRule, SweepGrid, SweepRunner};
use wilis::service::{ResultStore, StoreBudget, SweepService};
use wilis::softphy::DecoderKind;
use wilis::{FaultInjector, PointOutcome};

/// A per-test temp store path that parallel test threads cannot collide
/// on (process id x test-chosen tag).
fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "wilis_sweep_service_{}_{tag}.jsonl",
        std::process::id()
    ))
}

/// A small Figure-5-shaped grid covering solo and fused execution paths.
fn phy_grid() -> Vec<Scenario> {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["sova", "bcjr"])
        .snrs_db(&[6.0, 8.0])
        .seeds(&[1, 2])
        .packets(3)
        .payload_bits(600)
        .scenarios()
}

/// A grid that carries link- and cell-dimension metrics, so the disk
/// round trip is exercised on every optional result section.
fn link_cell_grid() -> Vec<Scenario> {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["bcjr"])
        .links(&["none", "arq", "harq-cc"])
        .contentions(&["p2p", "aloha"])
        .nodes(3)
        .snrs_db(&[6.0, 9.0])
        .packets(4)
        .payload_bits(300)
        .scenarios()
}

#[test]
fn overlapping_fig6_fig7_warm_rerun_simulates_nothing() {
    // The tentpole acceptance check: run the fig6 and fig7 drivers
    // against ONE service, then run them again — the second pass must be
    // served entirely from the store, simulating zero packets, and
    // reproduce the first pass exactly.
    let mut service = SweepService::new(SweepRunner::new(2));
    let cfg6 = fig6::Fig6Config {
        snrs: vec![SnrDb::new(6.0), SnrDb::new(7.0)],
        packets_per_snr: 4,
        payload_bits: 400,
        ..fig6::Fig6Config::paper(DecoderKind::Bcjr, 4)
    };
    let cfg7 = fig7::Fig7Config {
        packets: 6,
        payload_bits: 256,
        ..fig7::Fig7Config::paper(6)
    };
    let r6_cold = fig6::run_with(&mut service, &cfg6);
    let r7_cold = fig7::run_both_with(&mut service, &cfg7);
    let cold = service.metrics();
    assert_eq!(cold.misses, 4, "2 fig6 SNRs + 2 fig7 decoders");
    assert_eq!(cold.hits, 0);
    assert!(cold.packets_simulated > 0);

    service.reset_metrics();
    let r6_warm = fig6::run_with(&mut service, &cfg6);
    let r7_warm = fig7::run_both_with(&mut service, &cfg7);
    let warm = service.metrics();
    assert_eq!(
        warm.packets_simulated, 0,
        "a warm re-run must not simulate a single packet"
    );
    assert_eq!(warm.misses, 0);
    assert_eq!(warm.hits, 4);
    assert_eq!(r6_cold.points, r6_warm.points);
    for (a, b) in r7_cold.iter().zip(&r7_warm) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mean_rate_mbps.to_bits(), b.mean_rate_mbps.to_bits());
        assert_eq!(a.delivery_rate.to_bits(), b.delivery_rate.to_bits());
    }
}

#[test]
fn disk_store_warm_runs_bit_identical_at_1_2_and_8_threads() {
    // Grid cold once (writing the JSON-lines store), then re-run warm
    // from that file in fresh processes-worth of state: every thread
    // count must reproduce the cold results bit for bit with zero
    // simulation.
    let path = temp_store("warm_threads");
    let _ = std::fs::remove_file(&path);
    let scenarios = link_cell_grid();

    let mut cold = SweepService::with_store(SweepRunner::new(1), ResultStore::at_path(&path));
    let reference = cold.run(&scenarios).unwrap();
    assert_eq!(cold.metrics().misses, scenarios.len() as u64);
    drop(cold);

    for threads in [1, 2, 8] {
        let mut warm =
            SweepService::with_store(SweepRunner::new(threads), ResultStore::at_path(&path));
        assert_eq!(
            warm.metrics().store_entries_loaded,
            scenarios.len() as u64,
            "every cold record must load back"
        );
        let got = warm.run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread warm run diverged from the cold run"
        );
        assert_eq!(warm.metrics().packets_simulated, 0);
        assert_eq!(warm.metrics().hits, scenarios.len() as u64);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_cold_warm_split_matches_all_cold_run() {
    // Seed the store with only half the grid; a full-grid run then mixes
    // cache hits with fresh simulation and must still equal the all-cold
    // reference for every thread count.
    let scenarios = phy_grid();
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    for threads in [1, 2, 8] {
        let path = temp_store(&format!("split_t{threads}"));
        let _ = std::fs::remove_file(&path);
        let half = scenarios.len() / 2;
        let mut seeder =
            SweepService::with_store(SweepRunner::new(threads), ResultStore::at_path(&path));
        seeder.run(&scenarios[..half]).unwrap();
        drop(seeder);

        let mut mixed =
            SweepService::with_store(SweepRunner::new(threads), ResultStore::at_path(&path));
        let got = mixed.run(&scenarios).unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread cold/warm split diverged from all-cold"
        );
        assert_eq!(mixed.metrics().hits, half as u64);
        assert_eq!(mixed.metrics().misses, (scenarios.len() - half) as u64);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn streaming_callback_sees_every_point_once_in_any_split() {
    let scenarios = phy_grid();
    let mut service = SweepService::new(SweepRunner::new(2));
    service.run(&scenarios[..4]).unwrap();
    let mut seen = vec![0u32; scenarios.len()];
    let results = service
        .run_streaming(&scenarios, |i, r| {
            seen[i] += 1;
            assert_eq!(r.scenario, i, "streamed result carries its grid index");
        })
        .unwrap();
    assert!(
        seen.iter().all(|&n| n == 1),
        "per-point callback cardinality"
    );
    assert_eq!(results.len(), scenarios.len());
}

#[test]
fn duplicate_grid_points_simulate_once() {
    let mut scenarios = phy_grid();
    let dup = scenarios[0].clone();
    scenarios.push(dup);
    let mut service = SweepService::new(SweepRunner::new(2));
    let results = service.run(&scenarios).unwrap();
    assert_eq!(service.metrics().misses, (scenarios.len() - 1) as u64);
    assert_eq!(
        service.metrics().hits,
        1,
        "the duplicate coordinate is a hit"
    );
    let last = results.last().unwrap();
    assert_eq!(last.bit_errors, results[0].bit_errors);
    assert_eq!(last.hint_bins, results[0].hint_bins);
    assert_eq!(
        last.scenario,
        scenarios.len() - 1,
        "index rewritten per slot"
    );
}

#[test]
fn stopped_and_fixed_budget_results_never_alias_in_the_store() {
    // The stopping rule is part of the cache key: a confidence-stopped
    // record must not be served for a fixed-budget request or vice versa.
    let sc = &phy_grid()[0];
    let mut service = SweepService::new(SweepRunner::new(1));
    service.run(std::slice::from_ref(sc)).unwrap();
    service.set_stopping(Some(StoppingRule::ber(1e-3).with_chunk(1)));
    service.run(std::slice::from_ref(sc)).unwrap();
    assert_eq!(
        service.metrics().misses,
        2,
        "same coordinate under a different stopping rule is a different record"
    );
    assert_eq!(service.metrics().hits, 0);
}

// ---- stopping-rule properties --------------------------------------------

#[test]
fn chunked_stopping_equals_fixed_budget_truncated_at_the_stopping_point() {
    // The estimator property behind the determinism claim: a stopped run
    // IS the fixed-budget run truncated at the first closed chunk
    // boundary — same packets, same bits, same errors, same hint bins.
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["bcjr"])
        .snrs_db(&[5.5, 8.0])
        .packets(24)
        .payload_bits(400)
        .scenarios();
    let rule = StoppingRule::ber(2e-3).with_chunk(4);
    let stopping_runner = SweepRunner::new(1).with_stopping(Some(rule));
    let mut saw_early_stop = false;
    for sc in &grid {
        let stopped = &stopping_runner.run(std::slice::from_ref(sc)).unwrap()[0];
        assert!(
            stopped.packets <= u64::from(sc.packets),
            "cap: {}",
            sc.label()
        );
        saw_early_stop |= stopped.packets < u64::from(sc.packets);
        let mut truncated = sc.clone();
        truncated.packets = stopped.packets as u32;
        let fixed = &SweepRunner::new(1)
            .run(std::slice::from_ref(&truncated))
            .unwrap()[0];
        assert_eq!(stopped.packets, fixed.packets, "{}", sc.label());
        assert_eq!(stopped.bits, fixed.bits, "{}", sc.label());
        assert_eq!(stopped.bit_errors, fixed.bit_errors, "{}", sc.label());
        assert_eq!(stopped.packet_errors, fixed.packet_errors, "{}", sc.label());
        assert_eq!(stopped.hint_bins, fixed.hint_bins, "{}", sc.label());
        assert_eq!(
            stopped.predicted_pber_sum.to_bits(),
            fixed.predicted_pber_sum.to_bits(),
            "{}",
            sc.label()
        );
    }
    assert!(
        saw_early_stop,
        "the grid must contain at least one point where the interval closes early"
    );
}

#[test]
fn stopping_decisions_identical_for_any_thread_count() {
    // The chunk schedule is a pure function of the seed schedule, so the
    // per-point stopping decision — and therefore every downstream bit —
    // cannot depend on the worker count, including on the fused path
    // (three decoders share one channel realization below).
    let scenarios = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["viterbi", "sova", "bcjr"])
        .links(&["none", "arq"])
        .snrs_db(&[5.5, 8.0])
        .packets(16)
        .payload_bits(400)
        .scenarios();
    let rule = StoppingRule::ber(2e-3).with_chunk(4);
    let reference = SweepRunner::new(1)
        .with_stopping(Some(rule))
        .run(&scenarios)
        .unwrap();
    assert!(
        reference.iter().any(|r| r.packets < 16),
        "the rule must actually stop something for this to test anything"
    );
    for threads in [2, 8] {
        let got = SweepRunner::new(threads)
            .with_stopping(Some(rule))
            .run(&scenarios)
            .unwrap();
        assert_eq!(
            got, reference,
            "{threads}-thread confidence-stopped sweep diverged"
        );
    }
}

#[test]
fn fused_groups_stop_each_member_exactly_like_solo_execution() {
    // Members of a fused shared-channel group freeze their own tallies at
    // their own boundaries; a clean decoder stopping early must not
    // change a noisy sibling's bits, and every member must match its
    // standalone run.
    let scenarios = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["viterbi", "sova", "bcjr"])
        .snrs_db(&[6.5])
        .packets(12)
        .payload_bits(300)
        .scenarios();
    let rule = StoppingRule::ber(5e-3).with_chunk(2);
    let fused = SweepRunner::new(2)
        .with_stopping(Some(rule))
        .run(&scenarios)
        .unwrap();
    let solo_runner = SweepRunner::new(1).with_stopping(Some(rule));
    for (sc, f) in scenarios.iter().zip(&fused) {
        let solo = &solo_runner.run(std::slice::from_ref(sc)).unwrap()[0];
        assert_eq!(solo.packets, f.packets, "{}", sc.label());
        assert_eq!(solo.bit_errors, f.bit_errors, "{}", sc.label());
        assert_eq!(solo.hint_bins, f.hint_bins, "{}", sc.label());
        assert_eq!(
            solo.predicted_pber_sum.to_bits(),
            f.predicted_pber_sum.to_bits(),
            "{}",
            sc.label()
        );
    }
}

#[test]
fn packet_cap_honored_where_the_interval_never_closes() {
    // Deep in the waterfall with an absurdly tight target the interval
    // cannot close; the point must spend exactly its configured budget.
    let scenarios = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["bcjr"])
        .snrs_db(&[4.0])
        .packets(6)
        .payload_bits(400)
        .scenarios();
    for rule in [
        StoppingRule::ber(1e-9).with_chunk(1),
        StoppingRule::per(1e-9).with_chunk(2),
    ] {
        let r = &SweepRunner::new(1)
            .with_stopping(Some(rule))
            .run(&scenarios)
            .unwrap()[0];
        assert_eq!(r.packets, 6, "hard cap must bound the spend");
        let uncapped = &SweepRunner::new(1).run(&scenarios).unwrap()[0];
        assert_eq!(r.bit_errors, uncapped.bit_errors, "cap run == plain run");
    }
}

// ---- fault injection & crash-safe recovery -------------------------------

#[test]
fn injected_worker_panic_quarantines_one_point_at_any_thread_count() {
    // A scheduled panic at one grid point must quarantine exactly that
    // point — every other coordinate completes with its reference bits,
    // the store holds every survivor, and the whole SupervisedSweep
    // (outcomes + report) is identical at 1, 2, and 8 workers. Note the
    // targeted occurrence index addresses the service's deduplicated
    // rep grid (StoreKey order), not the submission order.
    let scenarios = phy_grid();
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    let inj = FaultInjector::from_spec("targeted:worker_panic=5").unwrap();
    let mut baseline = None;
    for threads in [1, 2, 8] {
        let mut service = SweepService::new(SweepRunner::new(threads));
        service.set_faults(Some(inj.clone()));
        let sweep = service.run_supervised(&scenarios).unwrap();
        assert_eq!(sweep.outcomes.len(), scenarios.len());
        assert_eq!(sweep.report.quarantined.len(), 1, "{threads} threads");
        assert_eq!(sweep.report.injected_panics, 1, "{threads} threads");
        assert!(
            sweep.report.quarantined[0]
                .message
                .contains("injected worker panic"),
            "{:?}",
            sweep.report
        );
        assert_eq!(
            sweep.completed().count(),
            scenarios.len() - 1,
            "every non-quarantined point must deliver a result"
        );
        for (i, r) in sweep.completed() {
            assert_eq!(
                r, &reference[i],
                "survivor {i} diverged at {threads} threads"
            );
        }
        assert_eq!(
            service.store().len(),
            scenarios.len() - 1,
            "only survivors are memoized"
        );
        match &baseline {
            None => baseline = Some(sweep),
            Some(b) => assert_eq!(&sweep, b, "{threads}-thread faulted sweep diverged"),
        }
    }
}

#[test]
fn legacy_service_api_reports_a_quarantine_as_an_error() {
    let scenarios = phy_grid();
    let mut service = SweepService::new(SweepRunner::new(2));
    service.set_faults(Some(
        FaultInjector::from_spec("targeted:worker_panic=3").unwrap(),
    ));
    let err = service.run(&scenarios).unwrap_err();
    assert!(
        format!("{err}").contains("quarantined"),
        "legacy run must surface the quarantine: {err}"
    );
}

#[test]
fn torn_final_line_loses_one_record_and_repairs_on_the_next_append() {
    // Simulate a crash mid-append by truncating the file inside its last
    // line: recovery loads every healthy record, counts the torn one as
    // skipped, and the next append must not merge with the torn tail.
    let path = temp_store("torn_tail");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..3];

    let mut cold = SweepService::with_store(SweepRunner::new(1), ResultStore::at_path(&path));
    cold.run(scenarios).unwrap();
    drop(cold);

    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 3);
    let keep = text.len() - text.lines().last().unwrap().len() / 2;
    std::fs::write(&path, &text.as_bytes()[..keep]).unwrap();

    let recovered = ResultStore::at_path(&path);
    assert!(recovered.tail_torn(), "a truncated tail must be detected");
    assert_eq!(recovered.loaded(), 2, "healthy records survive the tear");
    assert_eq!(
        recovered.skipped(),
        1,
        "the torn record is skipped, not fatal"
    );

    // Re-running the grid re-simulates only the lost point; its append
    // must first terminate the torn half-line.
    let mut repaired = SweepService::with_store(SweepRunner::new(1), recovered);
    let reference = SweepRunner::new(1).run(scenarios).unwrap();
    let got = repaired.run(scenarios).unwrap();
    assert_eq!(got, reference);
    assert_eq!(repaired.metrics().hits, 2);
    assert_eq!(repaired.metrics().misses, 1);
    drop(repaired);

    let reloaded = ResultStore::at_path(&path);
    assert_eq!(
        reloaded.loaded(),
        3,
        "the repaired file carries all records"
    );
    assert_eq!(reloaded.skipped(), 1, "the torn half-line stays inert");
    assert!(!reloaded.tail_torn());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_record_injection_is_counted_and_skipped_at_reload() {
    let path = temp_store("corrupt");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..4];
    let store = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("bernoulli:corrupt_record=1.0").unwrap()),
    );
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    let sweep = service.run_supervised(scenarios).unwrap();
    assert_eq!(sweep.completed().count(), scenarios.len());
    assert_eq!(
        sweep.report.corrupt_records,
        scenarios.len() as u64,
        "every append was mangled: {:?}",
        sweep.report
    );
    drop(service);

    let reloaded = ResultStore::at_path(&path);
    assert_eq!(reloaded.loaded(), 0, "mangled records must not parse");
    assert_eq!(reloaded.skipped(), scenarios.len() as u64);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_write_injection_leaves_only_skippable_half_lines() {
    let path = temp_store("torn_all");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..4];
    let store = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("bernoulli:torn_write=1.0").unwrap()),
    );
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    let sweep = service.run_supervised(scenarios).unwrap();
    assert_eq!(sweep.report.torn_writes, scenarios.len() as u64);
    assert!(service.store().tail_torn());
    drop(service);

    let reloaded = ResultStore::at_path(&path);
    assert_eq!(reloaded.loaded(), 0, "half-lines must not parse");
    assert_eq!(reloaded.skipped(), scenarios.len() as u64);
    assert!(reloaded.tail_torn(), "the last half-line has no newline");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn transient_write_faults_retry_and_the_file_stays_complete() {
    // `targeted:store_write=0` fails the FIRST attempt of every append;
    // the bounded retry policy must absorb it without losing a record.
    let path = temp_store("write_retry");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..4];
    let store = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("targeted:store_write=0").unwrap()),
    );
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    let sweep = service.run_supervised(scenarios).unwrap();
    assert_eq!(sweep.report.store_write_faults, scenarios.len() as u64);
    assert_eq!(sweep.report.store_retries, scenarios.len() as u64);
    assert_eq!(sweep.report.store_io_errors, 0);
    drop(service);
    assert_eq!(ResultStore::at_path(&path).loaded(), scenarios.len() as u64);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exhausted_write_retries_degrade_to_counted_io_errors() {
    // All three attempts of every append fail: the run must still return
    // correct results — persistence degrades, computation does not.
    let path = temp_store("write_exhaust");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..4];
    let store = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("targeted:store_write=0+1+2").unwrap()),
    );
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    let sweep = service.run_supervised(scenarios).unwrap();
    assert_eq!(sweep.report.store_io_errors, scenarios.len() as u64);
    let reference = SweepRunner::new(1).run(scenarios).unwrap();
    for (i, r) in sweep.completed() {
        assert_eq!(r, &reference[i], "results survive a dead store");
    }
    drop(service);
    assert_eq!(
        ResultStore::at_path(&path).loaded(),
        0,
        "nothing ever reached the disk"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn transient_and_exhausted_read_faults_at_load() {
    let path = temp_store("read_retry");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..3];
    let mut seeder = SweepService::with_store(SweepRunner::new(1), ResultStore::at_path(&path));
    seeder.run(scenarios).unwrap();
    drop(seeder);

    // One transient fault: the retry recovers every record.
    let transient = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("targeted:store_read=0").unwrap()),
    );
    assert_eq!(transient.loaded(), scenarios.len() as u64);
    assert_eq!(transient.read_faults(), 1);
    assert_eq!(transient.retries(), 1);
    assert_eq!(transient.io_errors(), 0);

    // Exhausted retries: the store starts empty and counts the IO error
    // instead of failing construction.
    let dead = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("targeted:store_read=0+1+2").unwrap()),
    );
    assert_eq!(dead.loaded(), 0);
    assert_eq!(dead.io_errors(), 1);
    assert_eq!(dead.read_faults(), 3);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn record_budget_evicts_oldest_and_compacts_the_file() {
    let path = temp_store("budget");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..5];
    let store =
        ResultStore::at_path_with(&path, StoreBudget::unbounded().with_max_records(2), None);
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    let sweep = service.run_supervised(scenarios).unwrap();
    assert_eq!(sweep.completed().count(), scenarios.len());
    assert_eq!(service.store().len(), 2, "budget caps the live set");
    assert_eq!(sweep.report.store_evictions, 3);
    assert!(service.store().compactions() >= 1, "eviction must compact");
    drop(service);

    let reloaded = ResultStore::at_path(&path);
    assert_eq!(
        reloaded.loaded(),
        2,
        "the compacted file holds exactly the survivors"
    );
    assert_eq!(reloaded.skipped(), 0, "compaction writes whole lines");

    // Shrinking the byte budget compacts again but never evicts the
    // newest record.
    let mut tight = reloaded;
    tight.set_budget(StoreBudget::unbounded().with_max_bytes(1));
    assert_eq!(tight.len(), 1, "byte budget keeps at least the newest");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_summary_carries_the_store_health_counters() {
    let path = temp_store("summary");
    let _ = std::fs::remove_file(&path);
    let scenarios = &phy_grid()[..2];
    let store = ResultStore::at_path_with(
        &path,
        StoreBudget::unbounded(),
        Some(FaultInjector::from_spec("targeted:store_write=0").unwrap()),
    );
    let mut service = SweepService::with_store(SweepRunner::new(1), store);
    service.run_supervised(scenarios).unwrap();
    let metrics = service.metrics();
    assert_eq!(metrics.store_retries, service.store().retries());
    assert_eq!(metrics.store_write_faults, service.store().write_faults());
    let summary = metrics.summary();
    assert!(summary.contains("store:"), "{summary}");
    assert!(summary.contains("retries"), "{summary}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_injector_leaves_the_service_bit_identical() {
    // Strict generalization at the service layer: a wired-but-disabled
    // injector must not perturb a single bit or count a single event.
    let scenarios = phy_grid();
    let mut plain = SweepService::new(SweepRunner::new(2));
    let reference = plain.run(&scenarios).unwrap();

    let mut wired = SweepService::new(SweepRunner::new(2));
    wired.set_faults(Some(FaultInjector::disabled()));
    let sweep = wired.run_supervised(&scenarios).unwrap();
    assert!(sweep.report.is_clean(), "{:?}", sweep.report);
    let results: Vec<_> = sweep
        .outcomes
        .iter()
        .map(|o| o.result().expect("no faults, no failures").clone())
        .collect();
    assert_eq!(results, reference);
}

#[test]
fn streaming_supervised_delivers_every_outcome_once() {
    let scenarios = phy_grid();
    let mut service = SweepService::new(SweepRunner::new(2));
    service.set_faults(Some(
        FaultInjector::from_spec("targeted:worker_panic=2").unwrap(),
    ));
    let mut seen = vec![0u32; scenarios.len()];
    let mut failed = 0u32;
    let sweep = service
        .run_streaming_supervised(&scenarios, |i, outcome| {
            seen[i] += 1;
            if let PointOutcome::Failed { .. } = outcome {
                failed += 1;
            }
        })
        .unwrap();
    assert!(seen.iter().all(|&n| n == 1), "cardinality: {seen:?}");
    assert_eq!(failed, 1);
    assert_eq!(sweep.report.quarantined.len(), 1);
}

#[test]
fn wilson_half_width_sanity() {
    // Open interval at zero trials; tightens monotonically with trials;
    // widens with error count at fixed n.
    assert!(StoppingRule::wilson_half_width(0, 0, 1.96).is_infinite());
    let mut prev = f64::INFINITY;
    for n in [10u64, 100, 1_000, 10_000] {
        let hw = StoppingRule::wilson_half_width(n / 10, n, 1.96);
        assert!(hw < prev, "half-width must shrink with trials");
        prev = hw;
    }
    assert!(
        StoppingRule::wilson_half_width(50, 100, 1.96)
            > StoppingRule::wilson_half_width(1, 100, 1.96)
    );
}
