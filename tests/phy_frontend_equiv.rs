//! Packet-level front-end equivalence: the planned TX/RX chains
//! (`tx_into`/`rx_from` over `FftPlan`/`OfdmPlan` and the compiled
//! map/demap kernels) must reproduce the frozen reference chains
//! (`tx_into_reference`/`rx_from_reference`) **bit for bit** on all eight
//! `PhyRate`s — identical baseband samples on the air, identical LLR
//! streams into the decoder, identical `RxResult`s out of it. This is the
//! front-end analogue of `crates/fec/src/equiv_tests.rs`' packet sweep.

use wilis::channel::{AwgnChannel, Channel, SnrDb};
use wilis::fxp::rng::SmallRng;
use wilis::fxp::Cplx;
use wilis::phy::{
    Demapper, OfdmDemodulator, PhyRate, PhyScratch, Receiver, RxResult, SnrScaling, Transmitter,
    SYMBOL_LEN,
};

fn assert_samples_bit_identical(a: &[Cplx], b: &[Cplx], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: sample count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: sample {i}: {x} vs {y}"
        );
    }
}

/// TX: planned samples equal reference samples bit for bit on every rate,
/// payload size, and scramble seed tried.
#[test]
fn tx_samples_bit_identical_on_all_rates() {
    let mut rng = SmallRng::seed_from_u64(0xFE_0001);
    for rate in PhyRate::all() {
        for round in 0..3 {
            let n = rng.gen_i64(1, 1800) as usize;
            let payload: Vec<u8> = (0..n).map(|_| rng.gen_bit()).collect();
            let seed = rng.gen_i64(1, 0x7F) as u8;
            let tx = Transmitter::new(rate);

            let mut planned_scratch = PhyScratch::new();
            let mut reference_scratch = PhyScratch::new();
            let mut planned = Vec::new();
            let mut reference = Vec::new();
            let pf = tx.tx_into(&payload, seed, &mut planned_scratch, &mut planned);
            let rf = tx.tx_into_reference(&payload, seed, &mut reference_scratch, &mut reference);
            assert_eq!(pf, rf, "{rate} round {round}: packet fields");
            assert_samples_bit_identical(&planned, &reference, &format!("{rate} round {round}"));
        }
    }
}

/// RX LLRs: on noisy samples, the planned demod→demap front-end produces
/// the exact LLR stream of the reference front-end on every rate — the
/// quantity the decoders consume.
#[test]
fn rx_llrs_bit_identical_on_all_rates() {
    let mut rng = SmallRng::seed_from_u64(0xFE_0002);
    for rate in PhyRate::all() {
        let payload: Vec<u8> = (0..600).map(|_| rng.gen_bit()).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        // Noisy enough that LLRs take non-trivial values near every
        // piecewise boundary of the demapper.
        AwgnChannel::new(SnrDb::new(7.0), rng.next_u64()).apply(&mut samples);

        for demap_bits in [Receiver::hint_demapper_bits(rate.modulation()), 8] {
            let demapper = Demapper::new(rate.modulation(), demap_bits, SnrScaling::Off);
            let mut planned_demod = OfdmDemodulator::new();
            let mut reference_demod = OfdmDemodulator::new();
            let mut planned_carriers = Vec::new();
            let mut reference_carriers = Vec::new();
            let mut planned_llrs = Vec::new();
            let mut reference_llrs = Vec::new();
            let mut reference_all = Vec::new();

            planned_demod.demodulate_packet_into(&samples, &mut planned_carriers);
            demapper.demap_into(&planned_carriers, &mut planned_llrs);
            for sym in samples.chunks_exact(SYMBOL_LEN) {
                reference_demod.demodulate_into_reference(sym, &mut reference_carriers);
                demapper.demap_into_reference(&reference_carriers, &mut reference_llrs);
                reference_all.extend_from_slice(&reference_llrs);
            }
            assert_eq!(
                planned_llrs, reference_all,
                "{rate} with {demap_bits}-bit demapper: LLR stream diverged"
            );
        }
    }
}

/// End to end: `rx_from` equals `rx_from_reference` — payload decisions,
/// SoftPHY hints, and soft magnitudes — for every rate and every stock
/// decoder, on noisy packets with real bit errors in play.
#[test]
fn rx_results_bit_identical_on_all_rates_and_decoders() {
    let mut rng = SmallRng::seed_from_u64(0xFE_0003);
    for rate in PhyRate::all() {
        let payload: Vec<u8> = (0..500).map(|_| rng.gen_bit()).collect();
        let tx = Transmitter::new(rate).transmit(&payload, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(9.0), rng.next_u64()).apply(&mut samples);

        for mut rx in [
            Receiver::viterbi(rate),
            Receiver::sova(rate),
            Receiver::bcjr(rate),
        ] {
            let mut planned_scratch = PhyScratch::new();
            let mut reference_scratch = PhyScratch::new();
            let mut planned = RxResult::default();
            let mut reference = RxResult::default();
            rx.rx_from(
                &samples,
                payload.len(),
                0x5D,
                &mut planned_scratch,
                &mut planned,
            );
            rx.rx_from_reference(
                &samples,
                payload.len(),
                0x5D,
                &mut reference_scratch,
                &mut reference,
            );
            assert_eq!(planned.payload, reference.payload, "{rate}: payload");
            assert_eq!(planned.hints, reference.hints, "{rate}: hints");
            assert_eq!(
                planned.soft_magnitudes, reference.soft_magnitudes,
                "{rate}: soft magnitudes"
            );
            assert_eq!(planned.decoder_id, reference.decoder_id);
        }
    }
}

/// Scratch reuse across packets and rates (the scenario engine's steady
/// state) keeps the two paths in lockstep: one scratch per path, rates
/// interleaved, packets back to back.
#[test]
fn scratch_reuse_across_rates_stays_equivalent() {
    let mut rng = SmallRng::seed_from_u64(0xFE_0004);
    let mut planned_scratch = PhyScratch::new();
    let mut reference_scratch = PhyScratch::new();
    let mut planned = Vec::new();
    let mut reference = Vec::new();
    for round in 0..12 {
        let rate = PhyRate::all()[rng.gen_i64(0, 7) as usize];
        let n = rng.gen_i64(1, 900) as usize;
        let payload: Vec<u8> = (0..n).map(|_| rng.gen_bit()).collect();
        let seed = rng.gen_i64(1, 0x7F) as u8;
        let tx = Transmitter::new(rate);
        tx.tx_into(&payload, seed, &mut planned_scratch, &mut planned);
        tx.tx_into_reference(&payload, seed, &mut reference_scratch, &mut reference);
        assert_samples_bit_identical(
            &planned,
            &reference,
            &format!("round {round} {rate} ({n} bits)"),
        );
    }
}
