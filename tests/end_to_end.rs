//! Integration: full transceiver round trips across crates.

use wilis::prelude::*;

fn payload(n: usize, phase: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 31 + phase) % 2) as u8).collect()
}

#[test]
fn every_rate_every_decoder_roundtrips_at_high_snr() {
    for rate in PhyRate::all() {
        let data = payload(1000, 3);
        let tx = Transmitter::new(rate).transmit(&data, 0x5D);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(SnrDb::new(30.0), 99).apply(&mut samples);
        for mut rx in [
            Receiver::viterbi(rate),
            Receiver::sova(rate),
            Receiver::bcjr(rate),
        ] {
            let got = rx.receive(&samples, data.len(), 0x5D);
            assert_eq!(got.bit_errors(&data), 0, "{rate} {}", got.decoder_id);
        }
    }
}

#[test]
fn plug_n_play_system_swaps_decoders_without_reconfiguration() {
    // The §2 "Plug-n-Play" property: identical topology, different
    // implementation per slot, same functional result on a clean channel.
    let system = WilisSystem::new();
    let data = payload(600, 1);
    let mut outputs = Vec::new();
    for name in system.decoder_names() {
        let cfg = SystemConfig::new(PhyRate::QpskThreeQuarters, &name);
        let tx = system.transmitter(&cfg).transmit(&data, 0x2A);
        let mut rx = system.receiver(&cfg).unwrap();
        outputs.push(rx.receive(&tx.samples, data.len(), 0x2A).payload);
    }
    for out in &outputs {
        assert_eq!(*out, data);
    }
}

#[test]
fn soft_decoders_match_hard_decoder_error_rates_or_better() {
    // At a noisy operating point, SOVA's hard decisions equal Viterbi's
    // exactly (given identical soft inputs), and BCJR must stay close:
    // sliding-window max-log MAP with the provisional "uncertain" window
    // initialization gives up a modest amount versus the exact ML path
    // (§4.3.2 — the paper notes accuracy degrades for small blocks). All
    // three get the same 5-bit demapper so their inputs are bit-identical.
    use wilis::fec::{BcjrDecoder, ConvCode, SovaDecoder, ViterbiDecoder};
    use wilis::phy::{Demapper, SnrScaling};
    let rate = PhyRate::Qam16Half;
    let snr = SnrDb::new(7.0);
    let code = ConvCode::ieee80211();
    let demap = || Demapper::new(rate.modulation(), 5, SnrScaling::Off);
    let mut totals = [0usize; 3];
    for trial in 0..60 {
        let data = payload(1200, trial);
        let tx = Transmitter::new(rate).transmit(&data, (trial % 127 + 1) as u8);
        let mut samples = tx.samples.clone();
        AwgnChannel::new(snr, trial as u64).apply(&mut samples);
        let receivers: [Receiver; 3] = [
            Receiver::new(rate, demap(), Box::new(ViterbiDecoder::new(&code))),
            Receiver::new(rate, demap(), Box::new(SovaDecoder::new(&code, 64, 64))),
            Receiver::new(rate, demap(), Box::new(BcjrDecoder::new(&code, 64))),
        ];
        for (i, mut rx) in receivers.into_iter().enumerate() {
            totals[i] += rx
                .receive(&samples, data.len(), (trial % 127 + 1) as u8)
                .bit_errors(&data);
        }
    }
    let [viterbi, sova, bcjr] = totals;
    assert_eq!(sova, viterbi, "SOVA follows the ML path");
    assert!(
        bcjr <= viterbi * 15 / 10 + 10,
        "BCJR {bcjr} vs Viterbi {viterbi}"
    );
}

#[test]
fn fading_with_genie_equalization_roundtrips() {
    let rate = PhyRate::QpskHalf;
    let data = payload(700, 5);
    let mut channel = ReplayChannel::fading(SnrDb::new(25.0), 20.0, 20e6, 8);
    // Find a moment when the channel is not in a deep fade.
    let mut start = 0u64;
    while channel.current_gain().norm_sq() < 0.5 {
        start += 20_000;
        channel.seek(start);
    }
    let gain = channel.current_gain();
    let tx = Transmitter::new(rate).transmit(&data, 0x5D);
    let mut samples = tx.samples.clone();
    channel.apply(&mut samples);
    let inv = Cplx::ONE / gain;
    for s in &mut samples {
        *s *= inv;
    }
    let got = Receiver::bcjr(rate).receive(&samples, data.len(), 0x5D);
    assert_eq!(got.bit_errors(&data), 0);
}

#[test]
fn burst_noise_failure_injection_localizes_damage() {
    // Failure injection: a mid-packet burst must not corrupt bits far
    // outside the burst (the interleaver spreads within a symbol, not
    // across the packet).
    let rate = PhyRate::Qam16Half;
    let data = payload(1704, 7);
    let tx = Transmitter::new(rate).transmit(&data, 0x5D);
    let mut samples = tx.samples.clone();
    // Clean channel plus a hard burst across two OFDM symbols.
    let mid = samples.len() / 2;
    let mut burst = vec![Cplx::ZERO; 160];
    AwgnChannel::new(SnrDb::new(-6.0), 3).apply(&mut burst);
    for (s, n) in samples[mid..mid + 160].iter_mut().zip(&burst) {
        *s += *n;
    }
    let got = Receiver::sova(rate).receive(&samples, data.len(), 0x5D);
    let errors: Vec<usize> = got
        .payload
        .iter()
        .zip(&data)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert!(!errors.is_empty(), "a -6 dB burst must do damage");
    // All errors confined to the middle third of the packet.
    let lo = data.len() / 3;
    let hi = 2 * data.len() / 3;
    assert!(
        errors.iter().all(|&i| (lo..hi).contains(&i)),
        "errors escaped the burst region: {errors:?}"
    );
    // And the hints must flag the damaged region as unreliable.
    let hint_mid: f64 =
        got.hints[lo..hi].iter().map(|&h| f64::from(h)).sum::<f64>() / (hi - lo) as f64;
    let hint_edge: f64 = got.hints[..lo].iter().map(|&h| f64::from(h)).sum::<f64>() / lo as f64;
    assert!(
        hint_mid < hint_edge,
        "burst region should look less confident: {hint_mid:.1} vs {hint_edge:.1}"
    );
}

#[test]
fn mid_packet_snr_step_shows_in_hints() {
    // Failure injection: the channel degrades halfway through the packet;
    // the second half's hints must drop even if the packet still decodes.
    let rate = PhyRate::QpskHalf;
    let data = payload(1600, 9);
    let tx = Transmitter::new(rate).transmit(&data, 0x5D);
    let mut samples = tx.samples.clone();
    let half = samples.len() / 2;
    let mut ch = AwgnChannel::new(SnrDb::new(20.0), 17);
    ch.apply(&mut samples[..half]);
    ch.set_snr(SnrDb::new(0.0));
    ch.apply(&mut samples[half..]);
    let got = Receiver::bcjr(rate).receive(&samples, data.len(), 0x5D);
    // Most clean bits clamp to hint 63, so the mean barely moves; the
    // tell-tale is the count of *weak* hints near error events.
    let weak = |hints: &[u16]| hints.iter().filter(|&&h| h < 32).count();
    let w1 = weak(&got.hints[..800]);
    let w2 = weak(&got.hints[800..]);
    assert!(
        w2 > 3 * w1.max(1),
        "degraded half should carry many more weak hints: {w1} vs {w2}"
    );
}
