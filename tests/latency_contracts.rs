//! Integration: the paper's latency arithmetic holds on the
//! latency-insensitive engine, end to end.

use wilis::fec::pipeline::{bcjr_pipeline_latency, sova_pipeline_latency};
use wilis::fec::{BcjrDecoder, ConvCode, SovaDecoder};
use wilis::lis::{Freq, LinkSpec, Module, Sink, Source, SystemBuilder};

#[test]
fn paper_headline_latencies() {
    // §4.3.1: SOVA with l = k = 64 is 140 cycles; §4.3.2: BCJR with
    // n = 64 is 135 cycles.
    assert_eq!(sova_pipeline_latency(64, 64), 140);
    assert_eq!(bcjr_pipeline_latency(64), 135);
}

#[test]
fn formulas_hold_across_the_design_space() {
    for l in [8u64, 16, 48, 96] {
        for k in [8u64, 32, 64] {
            assert_eq!(sova_pipeline_latency(l, k), l + k + 12, "l={l} k={k}");
        }
    }
    for n in [8u64, 32, 64, 128] {
        assert_eq!(bcjr_pipeline_latency(n), 2 * n + 7, "n={n}");
    }
}

#[test]
fn both_decoders_meet_the_80211_deadline_at_60mhz() {
    // §4.3: the decoders run at 60 MHz; 802.11a/g allows 25 µs.
    let cycle_secs = 1.0 / 60e6;
    let sova_secs = sova_pipeline_latency(64, 64) as f64 * cycle_secs;
    let bcjr_secs = bcjr_pipeline_latency(64) as f64 * cycle_secs;
    assert!(sova_secs < 25e-6, "SOVA {sova_secs:.2e}s");
    assert!(bcjr_secs < 25e-6, "BCJR {bcjr_secs:.2e}s");
    // And the paper's specific numbers: ~2.3 us and ~2.2 us.
    assert!((sova_secs - 2.33e-6).abs() < 0.1e-6);
    assert!((bcjr_secs - 2.25e-6).abs() < 0.1e-6);
}

#[test]
fn decoder_objects_report_matching_latency_models() {
    let code = ConvCode::ieee80211();
    assert_eq!(
        SovaDecoder::new(&code, 64, 64).latency_cycles(),
        sova_pipeline_latency(64, 64)
    );
    assert_eq!(
        BcjrDecoder::new(&code, 64).latency_cycles(),
        bcjr_pipeline_latency(64)
    );
}

/// A module that forwards tokens, counting them.
struct Forward {
    inp: Source<u32>,
    out: Sink<u32>,
    forwarded: u64,
}

impl Module for Forward {
    fn name(&self) -> &str {
        "forward"
    }
    fn tick(&mut self) {
        if self.out.can_enq() {
            if let Some(v) = self.inp.deq() {
                self.out.enq(v);
                self.forwarded += 1;
            }
        }
    }
}

struct Producer {
    out: Sink<u32>,
    sent: u32,
    limit: u32,
}

impl Module for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self) {
        if self.sent < self.limit && self.out.can_enq() {
            self.out.enq(self.sent);
            self.sent += 1;
        }
    }
    fn is_idle(&self) -> bool {
        self.sent >= self.limit
    }
}

struct Collector {
    inp: Source<u32>,
    got: Vec<u32>,
}

impl Module for Collector {
    fn name(&self) -> &str {
        "collector"
    }
    fn tick(&mut self) {
        if let Some(v) = self.inp.deq() {
            self.got.push(v);
        }
    }
}

#[test]
fn multi_clock_35_60_mhz_pipeline_conserves_tokens() {
    // The paper's clock configuration: baseband at 35 MHz, BER unit at
    // 60 MHz, joined by automatically inserted clock-domain crossings.
    let mut b = SystemBuilder::new();
    let baseband = b.clock("baseband", Freq::mhz(35));
    let ber_unit = b.clock("ber", Freq::mhz(60));

    let (p_tx, f_rx) = b.link::<u32>(&baseband, &baseband, LinkSpec::new(2));
    let (f_tx, c_rx) = b.link::<u32>(&baseband, &ber_unit, LinkSpec::new(4));
    b.add_module(
        &baseband,
        Producer {
            out: p_tx,
            sent: 0,
            limit: 5000,
        },
    );
    b.add_module(
        &baseband,
        Forward {
            inp: f_rx,
            out: f_tx,
            forwarded: 0,
        },
    );
    let collector = b.add_module(
        &ber_unit,
        Collector {
            inp: c_rx,
            got: Vec::new(),
        },
    );

    let mut sys = b.build();
    sys.run_until_quiescent(10_000_000);
    let got = &sys.module::<Collector>(collector).got;
    assert_eq!(got.len(), 5000, "no tokens lost across the 35/60 CDC");
    assert!(got.windows(2).all(|w| w[1] == w[0] + 1), "order preserved");
    // The 60 MHz domain saw ~60/35 times the edges of the 35 MHz domain.
    let ratio = ber_unit.edges() as f64 / baseband.edges() as f64;
    assert!((ratio - 60.0 / 35.0).abs() < 0.01, "clock ratio {ratio}");
}

#[test]
fn throughput_matched_by_faster_clock() {
    // §2 "Automatic Multi-Clock Support": the BER unit runs at 60 MHz
    // because it works per-bit while the baseband works per-sample. In a
    // token model: a consumer at 60 MHz keeps up with a 35 MHz producer
    // with a small FIFO and no backpressure stalls.
    let mut b = SystemBuilder::new();
    let fast = b.clock("fast", Freq::mhz(60));
    let slow = b.clock("slow", Freq::mhz(35));
    let (tx, rx) = b.link::<u32>(&slow, &fast, LinkSpec::new(2));
    b.add_module(
        &slow,
        Producer {
            out: tx,
            sent: 0,
            limit: 10_000,
        },
    );
    let c = b.add_module(
        &fast,
        Collector {
            inp: rx,
            got: Vec::new(),
        },
    );
    let mut sys = b.build();
    sys.run_until_quiescent(10_000_000);
    assert_eq!(sys.module::<Collector>(c).got.len(), 10_000);
    // Producer never stalled long: it finished within ~limit edges of its
    // own clock plus pipeline slack.
    assert!(
        slow.edges() < 10_000 + 64,
        "producer stalled: {} edges",
        slow.edges()
    );
}
