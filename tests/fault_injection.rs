//! Fault-injection smoke for the supervised runner — the CI-facing half
//! of the robustness contract:
//!
//! * a scheduled worker panic quarantines exactly its grid point, every
//!   survivor is bit-identical to the unfaulted reference, and the whole
//!   [`wilis::SupervisedSweep`] is identical at 1, 2, and 8 workers;
//! * with faults disabled (or no injector wired at all) the supervised
//!   path is bit-identical to the legacy runner — strict generalization;
//! * the legacy `run`/`run_streaming` API surfaces a quarantine as a
//!   typed error without losing the surviving results' determinism.
//!
//! Runner-level `worker_panic` occurrence indices address the submitted
//! grid directly (index `i` fails scenario `i`), unlike the service
//! layer, which addresses its deduplicated rep grid.

#![forbid(unsafe_code)]

use wilis::phy::PhyRate;
use wilis::scenario::{Scenario, SweepGrid, SweepRunner};
use wilis::{FaultInjector, PointOutcome};

/// A Figure-5-shaped grid mixing solo and fused-capable coordinates.
fn grid() -> Vec<Scenario> {
    SweepGrid::new()
        .rates(&[PhyRate::Qam16Half, PhyRate::QpskHalf])
        .decoders(&["sova", "bcjr"])
        .snrs_db(&[6.0, 8.0])
        .packets(3)
        .payload_bits(400)
        .scenarios()
}

#[test]
fn injected_panics_quarantine_their_points_identically_at_1_2_and_8_threads() {
    let scenarios = grid();
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    let inj = FaultInjector::from_spec("targeted:worker_panic=2+5").unwrap();
    let mut baseline = None;
    for threads in [1, 2, 8] {
        let sweep = SweepRunner::new(threads)
            .with_faults(Some(inj.clone()))
            .run_supervised(&scenarios)
            .unwrap();
        assert_eq!(sweep.outcomes.len(), scenarios.len());
        let failed: Vec<usize> = sweep
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_failed())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![2, 5], "{threads} threads");
        for i in &failed {
            match &sweep.outcomes[*i] {
                PointOutcome::Failed { job, message } => {
                    assert_eq!(job, i);
                    assert_eq!(message, &format!("injected worker panic at grid point {i}"));
                }
                PointOutcome::Completed(_) => unreachable!("filtered to failures"),
            }
        }
        assert_eq!(sweep.report.quarantined.len(), 2);
        assert_eq!(sweep.report.injected_panics, 2);
        for (i, r) in sweep.completed() {
            assert_eq!(
                r, &reference[i],
                "survivor {i} diverged at {threads} threads"
            );
        }
        match &baseline {
            None => baseline = Some(sweep),
            Some(b) => assert_eq!(&sweep, b, "{threads}-thread faulted sweep diverged"),
        }
    }
}

#[test]
fn zero_fault_supervised_run_is_bit_identical_to_the_legacy_runner() {
    // Strict generalization: a disabled injector and no injector at all
    // must both reproduce the legacy runner's bits with a clean report.
    let scenarios = grid();
    let reference = SweepRunner::new(2).run(&scenarios).unwrap();
    for faults in [None, Some(FaultInjector::disabled())] {
        let sweep = SweepRunner::new(2)
            .with_faults(faults)
            .run_supervised(&scenarios)
            .unwrap();
        assert!(sweep.report.is_clean(), "{:?}", sweep.report);
        let results: Vec<_> = sweep
            .outcomes
            .iter()
            .map(|o| o.result().expect("no faults, no failures").clone())
            .collect();
        assert_eq!(results, reference);
    }
    // The legacy entry points run over the supervised core; a disabled
    // injector must be invisible there too.
    let legacy = SweepRunner::new(2)
        .with_faults(Some(FaultInjector::disabled()))
        .run(&scenarios)
        .unwrap();
    assert_eq!(legacy, reference);
}

#[test]
fn legacy_api_surfaces_the_lowest_quarantined_index_as_an_error() {
    let scenarios = grid();
    let runner = SweepRunner::new(2).with_faults(Some(
        FaultInjector::from_spec("targeted:worker_panic=3+6").unwrap(),
    ));
    let err = runner.run(&scenarios).unwrap_err();
    let text = format!("{err}");
    assert!(
        text.contains("grid point 3 was quarantined"),
        "lowest index wins: {text}"
    );
    assert!(text.contains("injected worker panic"), "{text}");

    // The streaming variant still delivers every surviving point before
    // reporting the failure.
    let mut seen = 0usize;
    let err = runner
        .run_streaming(&scenarios, |_, _| seen += 1)
        .unwrap_err();
    assert!(format!("{err}").contains("quarantined"));
    assert_eq!(
        seen,
        scenarios.len() - 2,
        "survivors stream before the error"
    );
}

#[test]
fn forced_solo_quarantine_spares_fused_siblings() {
    // Three decoders share one channel coordinate and normally fuse into
    // one job; scheduling a panic on the middle member must force it
    // solo so its quarantine cannot take the siblings down — and the
    // siblings' bits must still equal the fully fused reference.
    let scenarios = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .decoders(&["viterbi", "sova", "bcjr"])
        .snrs_db(&[6.5])
        .packets(4)
        .payload_bits(300)
        .scenarios();
    assert_eq!(scenarios.len(), 3);
    let reference = SweepRunner::new(1).run(&scenarios).unwrap();
    let sweep = SweepRunner::new(2)
        .with_faults(Some(
            FaultInjector::from_spec("targeted:worker_panic=1").unwrap(),
        ))
        .run_supervised(&scenarios)
        .unwrap();
    assert!(sweep.outcomes[1].is_failed(), "the scheduled member fails");
    for i in [0, 2] {
        assert_eq!(
            sweep.outcomes[i].result().expect("siblings must survive"),
            &reference[i],
            "fused sibling {i} diverged"
        );
    }
    assert_eq!(sweep.report.quarantined.len(), 1);
    assert_eq!(sweep.report.injected_panics, 1);
}

#[test]
fn bernoulli_panic_plan_is_deterministic_across_thread_counts() {
    // A seeded random plan (not a targeted list) must still quarantine
    // the same set at any worker count: the decision is a pure function
    // of (fault seed, site, grid index).
    let scenarios = grid();
    let inj = FaultInjector::from_spec("bernoulli:seed=11,worker_panic=0.4").unwrap();
    let reference = SweepRunner::new(1)
        .with_faults(Some(inj.clone()))
        .run_supervised(&scenarios)
        .unwrap();
    let quarantined = reference.report.quarantined.len();
    assert!(
        quarantined > 0 && quarantined < scenarios.len(),
        "p=0.4 over {} points should fail some and spare some, got {quarantined}",
        scenarios.len()
    );
    for threads in [2, 8] {
        let got = SweepRunner::new(threads)
            .with_faults(Some(inj.clone()))
            .run_supervised(&scenarios)
            .unwrap();
        assert_eq!(got, reference, "{threads}-thread Bernoulli plan diverged");
    }
}
