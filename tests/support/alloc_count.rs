//! A counting global allocator for zero-allocation steady-state tests.
//!
//! Lives in test-only code on purpose: a `GlobalAlloc` impl requires
//! `unsafe`, and all eleven library crates carry `#![forbid(unsafe_code)]`
//! (enforced by `wilis-lint`'s `forbid-unsafe` rule). Test binaries are
//! separate crate roots, so the forbid stays intact where it matters.
//!
//! Two counters, incremented on every `alloc`/`alloc_zeroed`/`realloc`:
//!
//! * a thread-local count — immune to `cargo test`'s parallel test
//!   threads, the right probe for single-threaded hot loops;
//! * a process-global count — the only probe that can see worker threads
//!   spawned by `SweepRunner`; tests using it serialize on [`lock`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Counts allocation events (not bytes) and forwards to [`System`].
pub struct CountingAlloc;

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init: reading the counter must never itself allocate the
    // lazy-init machinery mid-measurement.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // try_with: TLS may already be torn down during thread exit.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocation events on the calling thread since it started.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Allocation events process-wide since program start.
pub fn global_allocs() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes tests in this binary so process-global deltas are not
/// polluted by a concurrently running test's allocations.
pub fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}
