//! A counting global allocator for zero-allocation steady-state tests.
//!
//! Lives in test-only code on purpose: a `GlobalAlloc` impl requires
//! `unsafe`, and all eleven library crates carry `#![forbid(unsafe_code)]`
//! (enforced by `wilis-lint`'s `forbid-unsafe` rule). Test binaries are
//! separate crate roots, so the forbid stays intact where it matters.
//!
//! Two counter pairs, bumped on every `alloc`/`alloc_zeroed`/`realloc`:
//!
//! * a thread-local event count and byte total — immune to `cargo test`'s
//!   parallel test threads, the right probe for single-threaded hot loops;
//! * a process-global event count and byte total — the only probes that
//!   can see worker threads spawned by `SweepRunner`; tests using them
//!   serialize on [`lock`].
//!
//! The byte totals measure *requested* bytes (the `Layout` size, or the
//! `new_size` of a realloc), so a zero-alloc assertion can also be spelled
//! as a byte *budget*: "this warm loop may allocate at most N bytes".

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Counts allocation events and bytes, and forwards to [`System`].
pub struct CountingAlloc;

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init: reading the counter must never itself allocate the
    // lazy-init machinery mid-measurement.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

fn bump(bytes: usize) {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    GLOBAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    // try_with: TLS may already be torn down during thread exit.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocation events on the calling thread since it started.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Bytes requested from the allocator on the calling thread since it
/// started.
pub fn thread_alloc_bytes() -> u64 {
    THREAD_BYTES.with(Cell::get)
}

/// Allocation events process-wide since program start.
pub fn global_allocs() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator process-wide since program start.
pub fn global_alloc_bytes() -> u64 {
    GLOBAL_BYTES.load(Ordering::Relaxed)
}

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes tests in this binary so process-global deltas are not
/// polluted by a concurrently running test's allocations.
pub fn lock() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}
