//! Zero-allocation steady-state tests, the runtime half of `wilis-lint`'s
//! static `no-alloc` rule: the lexical rule proves no allocating call is
//! *written* on a `// lint: no_alloc` path, these tests prove none is
//! *executed* once the scratch buffers are warm. Measured with a counting
//! global allocator (`tests/support/alloc_count.rs`).
//!
//! Warm-up is part of the contract: the first packet may allocate freely
//! (`ensure_rate` builds machinery, output vectors grow to capacity);
//! every packet after it must allocate nothing.
//!
//! No `#![forbid(unsafe_code)]` here: the included allocator module is
//! the one deliberate `unsafe` in the tree.

#[path = "support/alloc_count.rs"]
mod alloc_count;

use alloc_count::{global_allocs, thread_allocs};
use wilis::channel::{AwgnChannel, Channel, SnrDb};
use wilis::fxp::rng::SmallRng;
use wilis::phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter};
use wilis::scenario::{SweepGrid, SweepRunner};

#[global_allocator]
static COUNTER: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

const RATE: PhyRate = PhyRate::QpskThreeQuarters;
const PAYLOAD_BITS: usize = 600;
const STEADY_ITERS: usize = 50;

fn payload(rng: &mut SmallRng) -> Vec<u8> {
    (0..PAYLOAD_BITS).map(|_| rng.gen_bit()).collect()
}

/// Solo path: `tx_into` + `rx_from` with reused scratch must not allocate
/// after the first packet.
#[test]
fn solo_tx_rx_steady_state_allocates_nothing() {
    let _serial = alloc_count::lock();
    let mut rng = SmallRng::seed_from_u64(0x2A_0001);
    let payload = payload(&mut rng);
    let tx = Transmitter::new(RATE);
    let mut rx = Receiver::sova(RATE);
    let mut scratch = PhyScratch::new();
    let mut samples = Vec::new();
    let mut noisy = Vec::new();
    let mut out = RxResult::default();
    let mut channel = AwgnChannel::new(SnrDb::new(12.0), 7);

    let one_packet = |scratch: &mut PhyScratch,
                      rx: &mut Receiver,
                      channel: &mut AwgnChannel,
                      samples: &mut Vec<_>,
                      noisy: &mut Vec<_>,
                      out: &mut RxResult| {
        tx.tx_into(&payload, 0x5D, scratch, samples);
        noisy.clear();
        noisy.extend_from_slice(samples);
        channel.apply(noisy);
        rx.rx_from(noisy, PAYLOAD_BITS, 0x5D, scratch, out);
    };

    // Warm-up: machinery construction and buffer growth may allocate.
    one_packet(
        &mut scratch,
        &mut rx,
        &mut channel,
        &mut samples,
        &mut noisy,
        &mut out,
    );

    let before = thread_allocs();
    for _ in 0..STEADY_ITERS {
        one_packet(
            &mut scratch,
            &mut rx,
            &mut channel,
            &mut samples,
            &mut noisy,
            &mut out,
        );
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "solo tx/rx steady state allocated {delta} times over {STEADY_ITERS} packets"
    );
    assert!(!out.payload.is_empty(), "the loop actually decoded packets");
}

/// Batched path: `rx_batch_from` over four lanes with reused scratch must
/// not allocate after the first batch.
#[test]
fn batched_rx_steady_state_allocates_nothing() {
    let _serial = alloc_count::lock();
    let mut rng = SmallRng::seed_from_u64(0x2A_0002);
    let payload = payload(&mut rng);
    let tx = Transmitter::new(RATE);
    let mut rx = Receiver::bcjr(RATE);
    let mut scratch = PhyScratch::new();

    const LANES: usize = 4;
    let seeds = [0x11u8, 0x22, 0x33, 0x44];
    let mut lane_bufs: Vec<Vec<_>> = Vec::new();
    for seed in seeds {
        let mut buf = Vec::new();
        tx.tx_into(&payload, seed, &mut scratch, &mut buf);
        AwgnChannel::new(SnrDb::new(12.0), u64::from(seed)).apply(&mut buf);
        lane_bufs.push(buf);
    }
    let lanes: [&[_]; LANES] = [&lane_bufs[0], &lane_bufs[1], &lane_bufs[2], &lane_bufs[3]];
    let mut outs: Vec<RxResult> = (0..LANES).map(|_| RxResult::default()).collect();

    // Warm-up batch.
    rx.rx_batch_from(&lanes, PAYLOAD_BITS, &seeds, &mut scratch, &mut outs);

    let before = thread_allocs();
    for _ in 0..STEADY_ITERS {
        rx.rx_batch_from(&lanes, PAYLOAD_BITS, &seeds, &mut scratch, &mut outs);
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "batched rx steady state allocated {delta} times over {STEADY_ITERS} batches"
    );
    assert!(outs.iter().all(|o| !o.payload.is_empty()));
}

/// Fused shared-channel jobs: doubling the packet budget must not change
/// the total allocation count — every per-packet step of the fused inner
/// loop (generate, transmit, fade once; receive per member) runs out of
/// reused buffers. The sweep spawns worker threads, so this uses the
/// process-global counter under the serialization lock, and proves
/// per-packet zero by delta equality rather than delta zero.
#[test]
fn fused_sweep_inner_loop_allocates_nothing_per_packet() {
    let _serial = alloc_count::lock();
    let grid = |packets: u32| {
        SweepGrid::new()
            .rates(&[RATE])
            .decoders(&["viterbi", "sova", "bcjr"])
            .snrs_db(&[10.0])
            .seeds(&[9])
            .packets(packets)
            .payload_bits(PAYLOAD_BITS)
            .scenarios()
    };
    let runner = SweepRunner::new(1);

    // Warm-up run: one-time statics (constellation tables, registries).
    runner.run(&grid(4)).expect("stock names");

    let before_small = global_allocs();
    let small = runner.run(&grid(40)).expect("stock names");
    let delta_small = global_allocs() - before_small;

    let before_large = global_allocs();
    let large = runner.run(&grid(80)).expect("stock names");
    let delta_large = global_allocs() - before_large;

    assert_eq!(small.len(), 3, "three decoders fused over one channel");
    assert!(large.iter().all(|r| r.packets == 80));
    assert_eq!(
        delta_small, delta_large,
        "doubling the packet budget changed the allocation count \
         ({delta_small} vs {delta_large}): the fused inner loop allocates \
         per packet"
    );
}

/// The counter itself must catch an injected allocation — guards against
/// the measurement silently going dead (e.g. the global allocator not
/// being installed).
#[test]
fn canary_detects_injected_allocations() {
    let _serial = alloc_count::lock();
    let before = thread_allocs();
    let mut sink = 0u8;
    for i in 0..STEADY_ITERS {
        // The allocation a no_alloc path must never contain.
        let v = vec![0u8; 64 + i];
        sink = sink.wrapping_add(v[i]);
    }
    let delta = thread_allocs() - before;
    assert!(
        delta >= STEADY_ITERS as u64,
        "counter missed injected allocations: {delta} < {STEADY_ITERS}"
    );
    assert_eq!(sink, 0);
}
