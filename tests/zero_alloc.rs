//! Zero-allocation steady-state tests, the runtime half of `wilis-lint`'s
//! static `no-alloc` rule: the lexical rule proves no allocating call is
//! *written* on a `// lint: no_alloc` path, these tests prove none is
//! *executed* once the scratch buffers are warm. Measured with a counting
//! global allocator (`tests/support/alloc_count.rs`).
//!
//! Warm-up is part of the contract: the first packet may allocate freely
//! (`ensure_rate` builds machinery, output vectors grow to capacity);
//! every packet after it must allocate nothing.
//!
//! No `#![forbid(unsafe_code)]` here: the included allocator module is
//! the one deliberate `unsafe` in the tree.

#[path = "support/alloc_count.rs"]
mod alloc_count;

use alloc_count::{global_alloc_bytes, global_allocs, thread_alloc_bytes, thread_allocs};
use wilis::channel::{AwgnChannel, Channel, SnrDb};
use wilis::fxp::rng::SmallRng;
use wilis::mac::link::{LinkContext, Oracle};
use wilis::mac::{HarqConfig, HarqLink, LinkPolicy};
use wilis::phy::{PhyRate, PhyScratch, Receiver, RxResult, Transmitter};
use wilis::scenario::{SweepGrid, SweepRunner};
use wilis::FaultInjector;

#[global_allocator]
static COUNTER: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

const RATE: PhyRate = PhyRate::QpskThreeQuarters;
const PAYLOAD_BITS: usize = 600;
const STEADY_ITERS: usize = 50;

fn payload(rng: &mut SmallRng) -> Vec<u8> {
    (0..PAYLOAD_BITS).map(|_| rng.gen_bit()).collect()
}

/// Solo path: `tx_into` + `rx_from` with reused scratch must not allocate
/// after the first packet.
#[test]
fn solo_tx_rx_steady_state_allocates_nothing() {
    let _serial = alloc_count::lock();
    let mut rng = SmallRng::seed_from_u64(0x2A_0001);
    let payload = payload(&mut rng);
    let tx = Transmitter::new(RATE);
    let mut rx = Receiver::sova(RATE);
    let mut scratch = PhyScratch::new();
    let mut samples = Vec::new();
    let mut noisy = Vec::new();
    let mut out = RxResult::default();
    let mut channel = AwgnChannel::new(SnrDb::new(12.0), 7);

    let one_packet = |scratch: &mut PhyScratch,
                      rx: &mut Receiver,
                      channel: &mut AwgnChannel,
                      samples: &mut Vec<_>,
                      noisy: &mut Vec<_>,
                      out: &mut RxResult| {
        tx.tx_into(&payload, 0x5D, scratch, samples);
        noisy.clear();
        noisy.extend_from_slice(samples);
        channel.apply(noisy);
        rx.rx_from(noisy, PAYLOAD_BITS, 0x5D, scratch, out);
    };

    // Warm-up: machinery construction and buffer growth may allocate.
    one_packet(
        &mut scratch,
        &mut rx,
        &mut channel,
        &mut samples,
        &mut noisy,
        &mut out,
    );

    let before = thread_allocs();
    for _ in 0..STEADY_ITERS {
        one_packet(
            &mut scratch,
            &mut rx,
            &mut channel,
            &mut samples,
            &mut noisy,
            &mut out,
        );
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "solo tx/rx steady state allocated {delta} times over {STEADY_ITERS} packets"
    );
    assert!(!out.payload.is_empty(), "the loop actually decoded packets");
}

/// Batched path: `rx_batch_from` over four lanes with reused scratch must
/// not allocate after the first batch.
#[test]
fn batched_rx_steady_state_allocates_nothing() {
    let _serial = alloc_count::lock();
    let mut rng = SmallRng::seed_from_u64(0x2A_0002);
    let payload = payload(&mut rng);
    let tx = Transmitter::new(RATE);
    let mut rx = Receiver::bcjr(RATE);
    let mut scratch = PhyScratch::new();

    const LANES: usize = 4;
    let seeds = [0x11u8, 0x22, 0x33, 0x44];
    let mut lane_bufs: Vec<Vec<_>> = Vec::new();
    for seed in seeds {
        let mut buf = Vec::new();
        tx.tx_into(&payload, seed, &mut scratch, &mut buf);
        AwgnChannel::new(SnrDb::new(12.0), u64::from(seed)).apply(&mut buf);
        lane_bufs.push(buf);
    }
    let lanes: [&[_]; LANES] = [&lane_bufs[0], &lane_bufs[1], &lane_bufs[2], &lane_bufs[3]];
    let mut outs: Vec<RxResult> = (0..LANES).map(|_| RxResult::default()).collect();

    // Warm-up batch.
    rx.rx_batch_from(&lanes, PAYLOAD_BITS, &seeds, &mut scratch, &mut outs);

    let before = thread_allocs();
    for _ in 0..STEADY_ITERS {
        rx.rx_batch_from(&lanes, PAYLOAD_BITS, &seeds, &mut scratch, &mut outs);
    }
    let delta = thread_allocs() - before;
    assert_eq!(
        delta, 0,
        "batched rx steady state allocated {delta} times over {STEADY_ITERS} batches"
    );
    assert!(outs.iter().all(|o| !o.payload.is_empty()));
}

/// Fused shared-channel jobs: doubling the packet budget must not change
/// the total allocation count — every per-packet step of the fused inner
/// loop (generate, transmit, fade once; receive per member) runs out of
/// reused buffers. The sweep spawns worker threads, so this uses the
/// process-global counter under the serialization lock, and proves
/// per-packet zero by delta equality rather than delta zero.
#[test]
fn fused_sweep_inner_loop_allocates_nothing_per_packet() {
    let _serial = alloc_count::lock();
    let grid = |packets: u32| {
        SweepGrid::new()
            .rates(&[RATE])
            .decoders(&["viterbi", "sova", "bcjr"])
            .snrs_db(&[10.0])
            .seeds(&[9])
            .packets(packets)
            .payload_bits(PAYLOAD_BITS)
            .scenarios()
    };
    let runner = SweepRunner::new(1);

    // Warm-up run: one-time statics (constellation tables, registries).
    runner.run(&grid(4)).expect("stock names");

    let before_small = global_allocs();
    let before_small_bytes = global_alloc_bytes();
    let small = runner.run(&grid(40)).expect("stock names");
    let delta_small = global_allocs() - before_small;
    let bytes_small = global_alloc_bytes() - before_small_bytes;

    let before_large = global_allocs();
    let before_large_bytes = global_alloc_bytes();
    let large = runner.run(&grid(80)).expect("stock names");
    let delta_large = global_allocs() - before_large;
    let bytes_large = global_alloc_bytes() - before_large_bytes;

    assert_eq!(small.len(), 3, "three decoders fused over one channel");
    assert!(large.iter().all(|r| r.packets == 80));
    assert_eq!(
        delta_small, delta_large,
        "doubling the packet budget changed the allocation count \
         ({delta_small} vs {delta_large}): the fused inner loop allocates \
         per packet"
    );
    assert_eq!(
        bytes_small, bytes_large,
        "doubling the packet budget changed the bytes requested \
         ({bytes_small} vs {bytes_large}): the fused inner loop allocates \
         per packet"
    );
}

/// The supervised happy path — the `catch_unwind` boundary, the fault
/// checks, the outcome slots, and the report — must cost only per-job
/// overhead, never per-packet: doubling the packet budget through
/// `run_supervised` with a wired-but-disabled injector must not change
/// the allocation count or the bytes requested. Delta equality, like the
/// fused-sweep proof above, because the sweep spawns worker threads.
#[test]
fn supervised_sweep_happy_path_allocates_nothing_per_packet() {
    let _serial = alloc_count::lock();
    let grid = |packets: u32| {
        SweepGrid::new()
            .rates(&[RATE])
            .decoders(&["viterbi", "sova", "bcjr"])
            .snrs_db(&[10.0])
            .seeds(&[9])
            .packets(packets)
            .payload_bits(PAYLOAD_BITS)
            .scenarios()
    };
    let runner = SweepRunner::new(1).with_faults(Some(FaultInjector::disabled()));

    // Warm-up run: one-time statics (constellation tables, registries).
    runner.run_supervised(&grid(4)).expect("stock names");

    let before_small = global_allocs();
    let before_small_bytes = global_alloc_bytes();
    let small = runner.run_supervised(&grid(40)).expect("stock names");
    let delta_small = global_allocs() - before_small;
    let bytes_small = global_alloc_bytes() - before_small_bytes;

    let before_large = global_allocs();
    let before_large_bytes = global_alloc_bytes();
    let large = runner.run_supervised(&grid(80)).expect("stock names");
    let delta_large = global_allocs() - before_large;
    let bytes_large = global_alloc_bytes() - before_large_bytes;

    assert!(small.report.is_clean() && large.report.is_clean());
    assert_eq!(small.completed().count(), 3);
    assert!(large.completed().all(|(_, r)| r.packets == 80));
    assert_eq!(
        delta_small, delta_large,
        "doubling the packet budget changed the supervised allocation \
         count ({delta_small} vs {delta_large}): the supervisor allocates \
         per packet"
    );
    assert_eq!(
        bytes_small, bytes_large,
        "doubling the packet budget changed the supervised bytes requested \
         ({bytes_small} vs {bytes_large}): the supervisor allocates per \
         packet"
    );
}

/// The warm HARQ retry path — retransmit at a scheduled phase, front-end
/// into the mother plane, combine into the retained plane, re-decode the
/// combined plane — must allocate nothing (zero events *and* zero bytes)
/// once the combiner and scratch are warm. This is the runtime proof
/// behind the `// lint: no_alloc` annotations on
/// `HarqCore::absorb`, `combine_llrs_into`, `rx_front_end_into`, and
/// `rx_decode_from`.
#[test]
fn harq_retry_path_steady_state_allocates_nothing() {
    let _serial = alloc_count::lock();
    let mut rng = SmallRng::seed_from_u64(0x2A_0003);
    let payload = payload(&mut rng);
    // A punctured rate (3/4) so the IR schedule actually cycles phases.
    let mut rx = Receiver::sova(RATE);
    let mut scratch = PhyScratch::new();
    let mut samples = Vec::new();
    let mut mother = Vec::new();
    let mut out = RxResult::default();
    let mut channel = AwgnChannel::new(SnrDb::new(9.0), 11);
    let schedule = HarqConfig::default_ir_schedule(RATE.code_rate());
    let config = HarqConfig::incremental(8, schedule);
    let mut link = HarqLink::new(PAYLOAD_BITS as u64, config, RATE.code_rate());

    let one_round = |link: &mut HarqLink,
                     rx: &mut Receiver,
                     scratch: &mut PhyScratch,
                     samples: &mut Vec<_>,
                     mother: &mut Vec<_>,
                     out: &mut RxResult,
                     channel: &mut AwgnChannel| {
        // One logical packet driven the way the engine drives it: the
        // first attempt retains, the forced retry combines and
        // re-decodes, then the packet closes clean.
        for attempt in 0..2u64 {
            let phase = {
                let core = link.harq().expect("combining armed");
                let phase = core.tx_phase();
                Transmitter::with_phase(RATE, phase).tx_into(&payload, 0x5D, scratch, samples);
                channel.apply(samples);
                phase
            };
            rx.set_puncture_phase(phase);
            rx.rx_front_end_into(samples, PAYLOAD_BITS, scratch, mother);
            {
                let core = link.harq().expect("combining armed");
                core.absorb(mother);
                rx.rx_decode_from(core.plane(), PAYLOAD_BITS, 0x5D, scratch, out);
            }
            let ctx = LinkContext {
                sent: &payload,
                // Report a failure on the first attempt so the policy
                // walks the retain -> combine -> re-decode cycle.
                bit_errors: 1 - attempt,
                predicted_pber: 0.0,
                rate: RATE,
                oracle: Oracle::Unavailable,
            };
            let _ = link.observe(out, &out.hints, &ctx);
        }
    };

    // Warm-up: machinery construction and buffer growth may allocate.
    one_round(
        &mut link,
        &mut rx,
        &mut scratch,
        &mut samples,
        &mut mother,
        &mut out,
        &mut channel,
    );

    let before_events = thread_allocs();
    let before_bytes = thread_alloc_bytes();
    for _ in 0..STEADY_ITERS {
        one_round(
            &mut link,
            &mut rx,
            &mut scratch,
            &mut samples,
            &mut mother,
            &mut out,
            &mut channel,
        );
    }
    let events = thread_allocs() - before_events;
    let bytes = thread_alloc_bytes() - before_bytes;
    assert_eq!(
        events, 0,
        "warm HARQ retry path allocated {events} times over {STEADY_ITERS} rounds"
    );
    assert_eq!(
        bytes, 0,
        "warm HARQ retry path requested {bytes} bytes over {STEADY_ITERS} rounds"
    );
    assert!(!out.payload.is_empty(), "the loop actually decoded packets");
}

/// The counter itself must catch an injected allocation — guards against
/// the measurement silently going dead (e.g. the global allocator not
/// being installed). Checks the byte probe alongside the event probe.
#[test]
fn canary_detects_injected_allocations() {
    let _serial = alloc_count::lock();
    let before = thread_allocs();
    let before_bytes = thread_alloc_bytes();
    let mut sink = 0u8;
    for i in 0..STEADY_ITERS {
        // The allocation a no_alloc path must never contain.
        let v = vec![0u8; 64 + i];
        sink = sink.wrapping_add(v[i]);
    }
    let delta = thread_allocs() - before;
    let bytes = thread_alloc_bytes() - before_bytes;
    assert!(
        delta >= STEADY_ITERS as u64,
        "counter missed injected allocations: {delta} < {STEADY_ITERS}"
    );
    assert!(
        bytes >= (64 * STEADY_ITERS) as u64,
        "byte probe missed injected allocations: {bytes}"
    );
    assert_eq!(sink, 0);
}
