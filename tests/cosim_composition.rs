//! Integration: the Figure 1 system composed as latency-insensitive
//! modules on the engine — transmitter and receiver in the "FPGA" clock
//! domains, the channel in a "software" domain, joined across
//! automatically inserted clock-domain crossings.
//!
//! This is the composition the WiLIS platform exists for: each box of the
//! paper's Figure 1 is an LI module that makes no latency assumptions
//! about its neighbours, so the same modules run correctly whether the
//! channel takes one cycle or thousands (§2's modular-refinement
//! property, checked here by sweeping the channel's processing delay).

use wilis::channel::{Channel, ReplayChannel, SnrDb};
use wilis::fxp::Cplx;
use wilis::lis::{Freq, LinkSpec, Module, Sink, Source, SystemBuilder};
use wilis::phy::{PhyRate, Receiver, Transmitter, SYMBOL_LEN};

/// A packet travelling through the co-simulation.
#[derive(Clone)]
struct Frame {
    id: u32,
    payload: Vec<u8>,
    samples: Vec<Cplx>,
}

/// The baseband transmitter as an LI module: one packet per tick when
/// downstream has space.
struct TxModule {
    rate: PhyRate,
    out: Sink<Frame>,
    next_id: u32,
    limit: u32,
}

impl Module for TxModule {
    fn name(&self) -> &str {
        "transmitter"
    }
    fn tick(&mut self) {
        if self.next_id < self.limit && self.out.can_enq() {
            let payload: Vec<u8> = (0..400)
                .map(|i| ((i as u32 * 31 + self.next_id * 7 + 1) % 2) as u8)
                .collect();
            let seed = (self.next_id % 127 + 1) as u8;
            let tx = Transmitter::new(self.rate).transmit(&payload, seed);
            self.out.enq(Frame {
                id: self.next_id,
                payload,
                samples: tx.samples,
            });
            self.next_id += 1;
        }
    }
    fn is_idle(&self) -> bool {
        self.next_id >= self.limit
    }
}

/// The software channel as an LI module, with a configurable processing
/// delay (modeling host scheduling jitter): a frame dequeued at tick `t`
/// is forwarded at tick `t + delay`.
struct ChannelModule {
    channel: ReplayChannel,
    inp: Source<Frame>,
    out: Sink<Frame>,
    delay: u64,
    in_flight: Option<(Frame, u64)>,
    ticks: u64,
}

impl Module for ChannelModule {
    fn name(&self) -> &str {
        "software-channel"
    }
    fn tick(&mut self) {
        self.ticks += 1;
        if let Some((frame, ready_at)) = self.in_flight.take() {
            if self.ticks >= ready_at && self.out.can_enq() {
                self.out.enq(frame);
            } else {
                self.in_flight = Some((frame, ready_at));
                return;
            }
        }
        if self.in_flight.is_none() {
            if let Some(mut frame) = self.inp.deq() {
                self.channel.apply(&mut frame.samples);
                self.in_flight = Some((frame, self.ticks + self.delay));
            }
        }
    }
    fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }
}

/// The receiver as an LI module, collecting decoded results.
struct RxModule {
    rate: PhyRate,
    inp: Source<Frame>,
    results: Vec<(u32, usize)>,
}

impl Module for RxModule {
    fn name(&self) -> &str {
        "receiver"
    }
    fn tick(&mut self) {
        if let Some(frame) = self.inp.deq() {
            let seed = (frame.id % 127 + 1) as u8;
            let mut rx = Receiver::bcjr(self.rate);
            let got = rx.receive(&frame.samples, frame.payload.len(), seed);
            self.results
                .push((frame.id, got.bit_errors(&frame.payload)));
        }
    }
}

/// Builds and runs the composition with a given channel processing delay;
/// returns the per-packet error counts in arrival order.
fn run_composition(channel_delay: u64, packets: u32, snr_db: f64) -> Vec<(u32, usize)> {
    let rate = PhyRate::Qam16Half;
    let mut b = SystemBuilder::new();
    // The paper's clocks: baseband at 35 MHz; the software side modeled as
    // a (much slower) 1 MHz service domain, as in a real co-simulation the
    // host services the FIFO far less often than the pipeline clocks.
    let baseband = b.clock("baseband", Freq::mhz(35));
    let host = b.clock("host", Freq::mhz(1));

    let (tx_out, ch_in) = b.link::<Frame>(&baseband, &host, LinkSpec::new(4));
    let (ch_out, rx_in) = b.link::<Frame>(&host, &baseband, LinkSpec::new(4));
    b.add_module(
        &baseband,
        TxModule {
            rate,
            out: tx_out,
            next_id: 0,
            limit: packets,
        },
    );
    b.add_module(
        &host,
        ChannelModule {
            channel: ReplayChannel::awgn_only(SnrDb::new(snr_db), 20e6, 0xC0),
            inp: ch_in,
            out: ch_out,
            delay: channel_delay,
            in_flight: None,
            ticks: 0,
        },
    );
    let rx_id = b.add_module(
        &baseband,
        RxModule {
            rate,
            inp: rx_in,
            results: Vec::new(),
        },
    );
    let mut sys = b.build();
    sys.run_until_quiescent(50_000_000);
    sys.module::<RxModule>(rx_id).results.clone()
}

#[test]
fn figure1_composition_delivers_all_packets_cleanly() {
    let results = run_composition(1, 8, 30.0);
    assert_eq!(results.len(), 8, "every packet arrives");
    for (id, errors) in &results {
        assert_eq!(*errors, 0, "packet {id} corrupted at 30 dB");
    }
    // In order: latency-insensitive FIFOs preserve sequence.
    for (i, (id, _)) in results.iter().enumerate() {
        assert_eq!(*id, i as u32);
    }
}

#[test]
fn latency_insensitivity_channel_delay_never_changes_results() {
    // §2: "the latency insensitive property ... gives us the flexibility
    // to refine or swap the design of any module in the system without
    // affecting the correctness of the whole system." Sweep the channel
    // module's internal latency; the decoded results must be identical
    // because the channel realization is position-indexed, not
    // timing-dependent.
    let reference = run_composition(1, 6, 9.0);
    for delay in [2u64, 7, 50, 400] {
        let other = run_composition(delay, 6, 9.0);
        assert_eq!(
            reference, other,
            "channel delay {delay} changed functional results"
        );
    }
}

#[test]
fn composition_carries_noise_effects_end_to_end() {
    // At a noisy operating point the composed system shows errors -
    // confirming the channel module really is in the loop.
    let noisy = run_composition(1, 10, 6.0);
    let total: usize = noisy.iter().map(|(_, e)| e).sum();
    assert!(total > 0, "6 dB QAM-16 should show errors");
    let clean = run_composition(1, 10, 30.0);
    let total_clean: usize = clean.iter().map(|(_, e)| e).sum();
    assert_eq!(total_clean, 0);
}

/// Sanity on sample accounting: the composition moves whole OFDM symbols.
#[test]
fn frames_carry_whole_symbols() {
    let rate = PhyRate::Qam16Half;
    let tx = Transmitter::new(rate).transmit(&vec![1u8; 400], 1);
    assert_eq!(tx.samples.len() % SYMBOL_LEN, 0);
}
