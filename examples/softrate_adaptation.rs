//! SoftRate adapting to a fading channel, packet by packet.
//!
//! ```text
//! cargo run --release --example softrate_adaptation [-- packets]
//! ```
//!
//! Replays the Figure 7 scenario (20 Hz Rayleigh fading, 10 dB AWGN) and
//! prints the live trace: the channel's effective SNR, the rate SoftRate
//! picked, the PBER estimate that drove the decision, and whether the
//! packet survived — a compact view of cross-layer adaptation at work.

use wilis::fxp::rng::SmallRng;
use wilis::prelude::*;
use wilis_phy::SYMBOL_LEN;
use wilis_softphy::calibrate::receiver_for;

const SAMPLE_RATE: f64 = wilis::channel::MODEL_SAMPLE_RATE_HZ;

fn main() {
    let packets: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let mut channel = ReplayChannel::fading(SnrDb::new(10.0), 20.0, SAMPLE_RATE, 0xFADE);
    let mut softrate = SoftRate::for_packet_bits(PhyRate::Qam16Half, 800);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut delivered = 0u32;

    println!("SoftRate on a 20 Hz fading channel with 10 dB AWGN\n");
    println!(
        "{:>4} {:>10} {:>22} {:>12} {:>9}",
        "pkt", "eff. SNR", "rate", "pred. PBER", "result"
    );

    let mut position = 0u64;
    for p in 0..packets {
        let payload: Vec<u8> = (0..800).map(|_| rng.gen_bit()).collect();
        let scramble_seed = (p % 127 + 1) as u8;
        let rate = softrate.current();

        channel.seek(position);
        let eff_snr = channel.effective_snr();
        let gain = channel.current_gain();
        let tx = Transmitter::new(rate).transmit(&payload, scramble_seed);
        let airtime = (tx.fields.n_symbols * SYMBOL_LEN) as u64;
        let mut samples = tx.samples;
        channel.apply(&mut samples);
        // Genie equalization (the receiver has no channel estimation).
        let inv = Cplx::ONE / gain;
        for s in &mut samples {
            *s *= inv;
        }

        let mut rx = receiver_for(
            rate,
            DecoderKind::Bcjr,
            wilis::softphy::ScalingFactors::hint_demapper_bits(rate.modulation()),
        );
        let got = rx.receive(&samples, payload.len(), scramble_seed);
        let estimator = BerEstimator::analytic_for_rate(rate, DecoderKind::Bcjr);
        let pber = estimator.per_packet(&got.hints);
        let ok = got.bit_errors(&payload) == 0;
        delivered += u32::from(ok);
        softrate.observe(pber);

        println!(
            "{:>4} {:>8.1}dB {:>22} {:>12.2e} {:>9}",
            p,
            eff_snr.db(),
            rate.to_string(),
            pber,
            if ok { "ok" } else { "LOST" }
        );
        position += airtime + (2e-3 * SAMPLE_RATE) as u64;
    }

    println!(
        "\ndelivered {delivered}/{packets} packets ({:.0}%)",
        100.0 * f64::from(delivered) / f64::from(packets)
    );
}
