//! SoftRate adapting to a fading channel, swept on the scenario engine.
//!
//! ```text
//! cargo run --release --example softrate_adaptation [-- packets]
//! ```
//!
//! Replays the Figure 7 scenario (20 Hz Rayleigh fading over the
//! `"trace"` channel walk) at several mean SNRs with the `"softrate"`
//! link policy steering the rate. For every point, the engine replays
//! each packet at all eight rates against the identical channel
//! realization (the paper's pseudo-random noise model), so the
//! under/accurate/over columns are judged against a true oracle.

use wilis::phy::PhyRate;
use wilis::scenario::{SweepGrid, SweepRunner};

fn main() {
    let packets: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let snrs = [6.0, 8.0, 10.0, 12.0, 14.0];
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half]) // the initial rate; SoftRate takes over
        .links(&["softrate"])
        .channels(&["trace"])
        .channel_param("doppler_hz", "20")
        .channel_param("base_seed", "64222") // 0xFADE
        .snrs_db(&snrs)
        .packets(packets)
        .payload_bits(800);
    let scenarios = grid.scenarios();
    let results = SweepRunner::auto()
        .run(&scenarios)
        .expect("stock registry names");

    println!("SoftRate on a 20 Hz fading trace ({packets} packet slots per SNR)\n");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>10} {:>9} {:>9}",
        "SNR dB", "under %", "accurate %", "over %", "mean Mbps", "goodput", "delivery"
    );
    for (sc, r) in scenarios.iter().zip(&results) {
        let m = r.link.expect("softrate metrics");
        let total = (m.under + m.accurate + m.over).max(1) as f64;
        println!(
            "{:>8.1} {:>8.1} {:>10.1} {:>8.1} {:>10.2} {:>9.3} {:>8.1}%",
            sc.snr_db,
            100.0 * m.under as f64 / total,
            100.0 * m.accurate as f64 / total,
            100.0 * m.over as f64 / total,
            m.mean_selected_mbps(),
            m.goodput(),
            100.0 * m.delivery_rate()
        );
    }

    println!(
        "\nHigher SNR pulls the mean selected rate up; the accurate column is the\n\
         Figure 7 story - SoftPHY-driven adaptation tracks the oracle's choice."
    );
}
