//! ALOHA vs CSMA vs TDMA on one contention cell, swept over offered load.
//!
//! ```text
//! cargo run --release --example contention_cell [-- slots]
//! ```
//!
//! A 4-node cell at 10 dB runs each stock contention policy over a range
//! of offered loads (per-node packet-arrival probability per slot; 1.0 is
//! saturation). The table shows the textbook story: ALOHA's goodput
//! collapses as load grows (collisions burn the channel), carrier sense
//! defers around most of them, and the TDMA oracle — collision-free by
//! construction — bounds everyone from above.

use wilis::scenario::{SweepGrid, SweepRunner};

fn main() {
    let slots: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    let nodes = 4;
    let snr_db = 10.0;
    let loads = ["0.05", "0.1", "0.2", "0.4", "1.0"];
    let policies = ["aloha", "csma", "tdma"];
    let runner = SweepRunner::auto();

    println!(
        "{nodes}-node cell @{snr_db} dB, {slots} slots per point \
         (goodput = delivered bits / channel capacity)\n"
    );
    println!(
        "{:>6} | {:>24} | {:>24} | {:>24}",
        "load", "ALOHA good/coll%/idle%", "CSMA good/coll%/idle%", "TDMA good/coll%/idle%"
    );
    for load in loads {
        let mut cols = Vec::new();
        for policy in policies {
            let scenarios = SweepGrid::new()
                .decoders(&["viterbi"])
                .contentions(&[policy])
                .contention_param("load", load)
                .nodes(nodes)
                .snrs_db(&[snr_db])
                .packets(slots)
                .payload_bits(400)
                .scenarios();
            let results = runner.run(&scenarios).expect("stock registry names");
            let cell = results[0].cell.as_ref().expect("cell metrics");
            cols.push(format!(
                "{:>7.3} {:>6.1} {:>8.1}",
                cell.aggregate_goodput(),
                100.0 * cell.collision_fraction(),
                100.0 * cell.idle_fraction()
            ));
        }
        println!(
            "{:>6} | {:>24} | {:>24} | {:>24}",
            load, cols[0], cols[1], cols[2]
        );
    }

    println!(
        "\nALOHA pays for ignorance with collisions, CSMA converts most of them\n\
         into deferrals, and TDMA never collides - the oracle upper bound the\n\
         cell tests pin. Swap policies, loads, nodes, or the capture margin\n\
         (contention_param(\"capture_db\", ...)) to explore the design space."
    );
}
