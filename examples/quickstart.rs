//! Quickstart: one packet through the full pipeline, with SoftPHY output.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a QAM-16 transceiver from the plug-n-play system, sends a packet
//! through an AWGN channel, and prints what the SoftPHY layer sees: the
//! hint distribution, the predicted packet BER, and the ground truth.

use wilis::prelude::*;

fn main() {
    let rate = PhyRate::Qam16Half;
    let snr = SnrDb::new(8.0);
    println!("WiLIS quickstart: {rate} over AWGN at {snr}\n");

    // Assemble the system the AWB way: pick implementations by name.
    let system = WilisSystem::new();
    println!("available decoders: {}", system.decoder_names().join(", "));
    let config = SystemConfig::new(rate, "bcjr");
    let transmitter = system.transmitter(&config);
    let mut receiver = system.receiver(&config).expect("bcjr is registered");

    // A 1704-bit payload, the paper's Figure 6 packet size.
    let payload: Vec<u8> = (0..1704).map(|i| ((i * 37 + 11) % 2) as u8).collect();
    let tx = transmitter.transmit(&payload, 0x5D);
    println!(
        "transmitted {} payload bits in {} OFDM symbols ({} samples)",
        payload.len(),
        tx.fields.n_symbols,
        tx.samples.len()
    );

    // The software channel: the co-simulation's other half.
    let mut samples = tx.samples.clone();
    AwgnChannel::new(snr, 42).apply(&mut samples);

    let got = receiver.receive(&samples, payload.len(), 0x5D);
    let errors = got.bit_errors(&payload);

    // SoftPHY: per-bit confidence -> per-packet BER estimate.
    let estimator = BerEstimator::analytic(rate.modulation(), DecoderKind::Bcjr);
    let predicted = estimator.per_packet(&got.hints);
    let mut histogram = [0u32; 8];
    for &h in &got.hints {
        histogram[(h / 8) as usize] += 1;
    }

    println!("\nhint distribution (8 bins of 8):");
    for (i, count) in histogram.iter().enumerate() {
        let bar = "#".repeat((count * 48 / payload.len() as u32) as usize);
        println!("  {:>2}-{:>2} {:>5} {}", i * 8, i * 8 + 7, count, bar);
    }
    println!("\npredicted packet BER : {predicted:.3e}");
    println!(
        "actual   packet BER : {:.3e} ({errors} of {} bits wrong)",
        errors as f64 / payload.len() as f64,
        payload.len()
    );
    println!(
        "packet delivered    : {}",
        if errors == 0 {
            "yes"
        } else {
            "no (ARQ would retransmit)"
        }
    );

    // And the batched view of the same experiment: a small
    // (decoder x SNR) grid on the scenario engine — the workload behind
    // every figure, executed with bit-identical results for any thread
    // count.
    let grid = SweepGrid::new()
        .rates(&[rate])
        .decoders(&["viterbi", "sova", "bcjr"])
        .snrs_db(&[6.0, 8.0, 10.0])
        .packets(4)
        .payload_bits(1704);
    let runner = SweepRunner::auto();
    let results = runner.run(&grid.scenarios()).expect("stock names");
    println!(
        "\nscenario sweep ({} grid points on {} worker(s)):",
        results.len(),
        runner.threads()
    );
    print!("{}", wilis::scenario::render_table(&results));
}
