//! Partial packet recovery versus whole-packet ARQ, as a link-layer
//! sweep on the scenario engine.
//!
//! ```text
//! cargo run --release --example partial_packet_recovery
//! ```
//!
//! PPR is the paper's first motivating consumer of per-bit confidence:
//! instead of retransmitting a whole corrupted packet (ARQ), request only
//! the chunks whose bits look unreliable. This example sweeps the QAM-16
//! waterfall with both policies on the link axis of a `SweepGrid`, then
//! sweeps PPR's hint threshold at a fixed lossy operating point — the
//! whole experiment is registry names, no bespoke loops.

use wilis::phy::PhyRate;
use wilis::scenario::{render_link_table, SweepGrid, SweepRunner};

fn main() {
    let packets = 60;
    let payload_bits = 1704;
    let snrs = [5.5, 6.0, 6.5, 7.0, 7.5];

    println!("ARQ vs PPR across the QAM-16 1/2 waterfall ({packets} packets/point)\n");
    let grid = SweepGrid::new()
        .rates(&[PhyRate::Qam16Half])
        .links(&["arq", "ppr"])
        .snrs_db(&snrs)
        .packets(packets)
        .payload_bits(payload_bits);
    let results = SweepRunner::auto()
        .run(&grid.scenarios())
        .expect("stock registry names");
    print!("{}", render_link_table(&results));

    // The PPR knob: a permissive threshold retransmits more chunks and
    // recovers more packets; a strict one is cheaper but misses errors.
    let snr = 6.0;
    println!("\nPPR hint-threshold sweep at {snr} dB:");
    println!(
        "{:>10} {:>9} {:>8} {:>10} {:>9}",
        "threshold", "goodput", "retx %", "delivered", "gave up"
    );
    for threshold in [4u16, 8, 16, 24] {
        let grid = SweepGrid::new()
            .rates(&[PhyRate::Qam16Half])
            .links(&["ppr"])
            .link_param("hint_threshold", &threshold.to_string())
            .link_param("chunk_bits", "71")
            .snrs_db(&[snr])
            .packets(packets)
            .payload_bits(payload_bits);
        let results = SweepRunner::auto()
            .run(&grid.scenarios())
            .expect("stock registry names");
        let m = results[0].link.expect("ppr metrics");
        println!(
            "{:>10} {:>9.3} {:>7.1}% {:>10} {:>9}",
            threshold,
            m.goodput(),
            100.0 * m.retransmit_fraction(),
            m.delivered,
            m.gave_up
        );
    }

    println!(
        "\nconventional ARQ retransmits all {payload_bits} bits whenever any error \
         exists;\nPPR repairs the same packets for a fraction of the airtime - the \
         efficiency\ngain the paper cites from [17]."
    );
}
