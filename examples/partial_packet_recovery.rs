//! Partial Packet Recovery: repairing a corrupted packet from its hints.
//!
//! ```text
//! cargo run --release --example partial_packet_recovery
//! ```
//!
//! PPR is the paper's first motivating consumer of per-bit confidence:
//! instead of retransmitting a whole corrupted packet (ARQ), request only
//! the chunks whose bits look unreliable. This example corrupts a packet
//! with a noise burst, plans a PPR retransmission from the SoftPHY hints,
//! and compares the cost against whole-packet ARQ.

use wilis::prelude::*;
use wilis_mac::ppr::{evaluate, PprConfig};

fn main() {
    let rate = PhyRate::Qam16Half;
    let payload: Vec<u8> = (0..1704).map(|i| ((i * 13 + 5) % 2) as u8).collect();
    let tx = Transmitter::new(rate).transmit(&payload, 0x5D);

    // A channel that is clean except for a burst in the middle of the
    // packet - the bursty interference case PPR was designed for.
    let mut samples = tx.samples.clone();
    AwgnChannel::new(SnrDb::new(30.0), 1).apply(&mut samples);
    let burst = samples.len() / 2..samples.len() / 2 + 240; // ~3 OFDM symbols
    let mut burst_noise = vec![Cplx::ZERO; burst.len()];
    AwgnChannel::new(SnrDb::new(-3.0), 2).apply(&mut burst_noise);
    for (s, n) in samples[burst.clone()].iter_mut().zip(&burst_noise) {
        *s += *n;
    }

    let mut rx = Receiver::bcjr(rate);
    let got = rx.receive(&samples, payload.len(), 0x5D);
    let errors: Vec<bool> = got
        .payload
        .iter()
        .zip(&payload)
        .map(|(a, b)| a != b)
        .collect();
    let n_errors = errors.iter().filter(|&&e| e).count();
    println!(
        "burst-corrupted packet: {n_errors} bit errors in {} bits",
        payload.len()
    );

    println!(
        "\n{:>10} {:>12} {:>14} {:>12} {:>10}",
        "threshold", "chunks sent", "bits resent", "% of packet", "recovered"
    );
    for threshold in [4u16, 8, 16, 24] {
        let cfg = PprConfig::new(71, threshold); // 24 chunks of 71 bits
        let plan = cfg.plan(&got.hints);
        let outcome = evaluate(&cfg, &plan, &errors);
        println!(
            "{:>10} {:>12} {:>14} {:>11.1}% {:>10}",
            threshold,
            plan.iter().filter(|&&p| p).count(),
            outcome.retransmitted_bits,
            100.0 * outcome.retransmit_fraction(),
            if outcome.recovered() { "yes" } else { "no" }
        );
    }

    println!(
        "\nconventional ARQ would retransmit all {} bits (100%)",
        payload.len()
    );
    println!(
        "PPR at the right threshold repairs the same packet for a fraction \
         of the airtime - the efficiency gain the paper cites from [17]."
    );
}
