//! BER waterfall curves: the workload the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example ber_waterfall [-- bits_per_point]
//! ```
//!
//! Sweeps SNR for three representative rates and prints coded BER and
//! packet error rate per decoder — the kind of characterization that
//! requires simulating the *whole* pipeline, because fixed-point
//! demapping, puncturing and windowed decoding all distort the waterfall
//! in ways no isolated model captures (§1 of the paper).

use wilis_channel::SnrDb;
use wilis_phy::PhyRate;
use wilis_softphy::{calibrate_hints, CalibrationConfig, DecoderKind};

fn main() {
    let bits: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    println!("BER waterfalls ({bits} payload bits per point)\n");

    let sweeps = [
        (PhyRate::QpskHalf, vec![0.0, 1.0, 2.0, 3.0, 4.0]),
        (PhyRate::Qam16Half, vec![5.0, 6.0, 7.0, 8.0, 9.0]),
        (PhyRate::Qam64TwoThirds, vec![12.0, 13.0, 14.0, 15.0, 16.0]),
    ];

    for (rate, snrs) in sweeps {
        println!("{rate}");
        println!(
            "  {:>6} {:>14} {:>14} {:>10}",
            "SNR dB", "SOVA BER", "BCJR BER", "PER(BCJR)"
        );
        for &snr in &snrs {
            let mut row = format!("  {snr:>6.1}");
            let mut per = 0.0;
            for decoder in [DecoderKind::Sova, DecoderKind::Bcjr] {
                let cal = calibrate_hints(&CalibrationConfig::new(
                    rate,
                    decoder,
                    SnrDb::new(snr),
                    bits,
                ));
                row.push_str(&format!(" {:>14.3e}", cal.overall_ber));
                per = cal.packet_errors as f64 / cal.packets as f64;
            }
            println!("{row} {:>9.1}%", per * 100.0);
        }
        println!();
    }
    println!("Raise the bits-per-point argument to resolve deeper BER floors.");
}
