//! BER waterfall curves: the workload the paper's introduction motivates,
//! run as one batched grid on the scenario engine.
//!
//! ```text
//! cargo run --release --example ber_waterfall [-- bits_per_point]
//! ```
//!
//! Sweeps SNR for three representative rates and prints coded BER and
//! packet error rate per decoder — the kind of characterization that
//! requires simulating the *whole* pipeline, because fixed-point
//! demapping, puncturing and windowed decoding all distort the waterfall
//! in ways no isolated model captures (§1 of the paper). Every
//! (rate, decoder, SNR) point is one [`wilis::Scenario`]; the whole grid
//! executes across the worker pool with bit-identical results for any
//! thread count.
//!
//! The grid runs through the memoizing [`wilis::SweepService`]: set
//! `WILIS_STORE=path.jsonl` and a re-run serves every repeated point
//! from the store instead of re-simulating it (the cache summary at the
//! end shows hits/misses/packets saved).

use wilis::phy::PhyRate;
use wilis::scenario::{SweepGrid, SweepRunner};
use wilis::service::SweepService;

const PACKET_BITS: usize = 1704;

fn main() {
    let bits: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let packets = bits.div_ceil(PACKET_BITS as u64).max(1) as u32;

    let sweeps = [
        (PhyRate::QpskHalf, vec![0.0, 1.0, 2.0, 3.0, 4.0]),
        (PhyRate::Qam16Half, vec![5.0, 6.0, 7.0, 8.0, 9.0]),
        (PhyRate::Qam64TwoThirds, vec![12.0, 13.0, 14.0, 15.0, 16.0]),
    ];

    // One grid for everything: 3 rates x 2 decoders x 5 SNRs = 30 points.
    let scenarios: Vec<_> = sweeps
        .iter()
        .flat_map(|(rate, snrs)| {
            SweepGrid::new()
                .rates(&[*rate])
                .decoders(&["sova", "bcjr"])
                .snrs_db(snrs)
                .packets(packets)
                .payload_bits(PACKET_BITS)
                .scenarios()
        })
        .collect();

    let mut service = SweepService::from_env(SweepRunner::auto());
    println!(
        "BER waterfalls: {} grid points x {} packets on {} worker(s)\n",
        scenarios.len(),
        packets,
        service.runner().threads()
    );
    let results = service.run(&scenarios).expect("stock names");

    // Results arrive in submission order: per rate, SOVA block then BCJR
    // block, each over the rate's SNR list.
    let mut cursor = 0usize;
    for (rate, snrs) in &sweeps {
        println!("{rate}");
        println!(
            "  {:>6} {:>14} {:>14} {:>10}",
            "SNR dB", "SOVA BER", "BCJR BER", "PER(BCJR)"
        );
        let sova = &results[cursor..cursor + snrs.len()];
        let bcjr = &results[cursor + snrs.len()..cursor + 2 * snrs.len()];
        cursor += 2 * snrs.len();
        for ((snr, s), b) in snrs.iter().zip(sova).zip(bcjr) {
            println!(
                "  {snr:>6.1} {:>14.3e} {:>14.3e} {:>9.1}%",
                s.ber(),
                b.ber(),
                100.0 * b.per()
            );
        }
        println!();
    }
    let metrics = service.metrics();
    println!("{}", metrics.summary());
    if let Some(path) = service.store().path() {
        println!(
            "store: {} ({} entries loaded at start)",
            path.display(),
            metrics.store_entries_loaded
        );
    } else {
        println!("store: in-memory (set WILIS_STORE=path.jsonl to persist across runs)");
    }
    println!("Raise the bits-per-point argument to resolve deeper BER floors.");
}
