//! The co-simulation platform story: clock domains, link models, and why
//! the hybrid split wins.
//!
//! ```text
//! cargo run --release --example cosim_platform
//! ```
//!
//! Walks through the three platform-level results of the paper: (1) the
//! Figure 2 simulation-speed table and its software-channel bottleneck,
//! (2) the decoupled-vs-lock-step transfer comparison behind the ~10×
//! claim of §2, and (3) FPGA virtualization — the same model numbers on
//! three different host links.

use wilis::cosim::SpeedModel;
use wilis::experiment::fig2;
use wilis::lis::platform::{LinkModel, Multiplexer};
use wilis::phy::PhyRate;

fn main() {
    // 1. Figure 2: the hybrid platform model (no native measurement here;
    //    the fig2 bench adds it).
    println!("{}", fig2::render(&fig2::run(0)));

    let model = SpeedModel::paper();
    println!(
        "link utilization at 54 Mbps: {:.1}% of the FSB's 700 MB/s — the channel\n\
         CPU, not the link, is the bottleneck (the paper's §3 conclusion).\n",
        100.0 * model.link_utilization(PhyRate::Qam64ThreeQuarters)
    );

    // 2. Decoupling: latency-insensitive batched streaming vs lock-step.
    let fsb = LinkModel::fsb();
    println!("decoupled vs lock-step transfers on the FSB:");
    println!(
        "{:>12} {:>18} {:>18} {:>8}",
        "batch", "decoupled MB/s", "lock-step MB/s", "ratio"
    );
    for batch in [64u64, 256, 1024, 4096, 65536] {
        let d = fsb.streaming_bytes_per_sec(batch) / 1e6;
        let l = fsb.lockstep_bytes_per_sec(batch) / 1e6;
        println!("{batch:>12} {d:>18.1} {l:>18.1} {:>8.1}", d / l);
    }
    println!(
        "large decoupled batches vs fine-grained lock-step: {:.0}x — the paper's\n\
         \"approximately one order of magnitude\" (§2).\n",
        fsb.streaming_bytes_per_sec(65536) / fsb.lockstep_bytes_per_sec(256)
    );

    // 3. FPGA virtualization: the same design, three physical links.
    println!("the same simulation on three LEAP-style platforms:");
    for link in [LinkModel::fsb(), LinkModel::pcie(), LinkModel::usb2()] {
        let m = SpeedModel::new(6.9e6, 35.0e6, link);
        let row = m.row(PhyRate::Qam64ThreeQuarters);
        println!(
            "  {:<28} {:>8.3} Mb/s ({:>5.1}% of line rate, bottleneck: {})",
            link.to_string(),
            row.sim_mbps,
            100.0 * row.fraction_of_line_rate,
            row.bottleneck
        );
    }

    // And LEAP's service multiplexing: several logical channels sharing
    // the physical link without interfering until it saturates.
    let mut mux = Multiplexer::new(LinkModel::fsb());
    mux.add_channel("baseband samples", 55e6)
        .add_channel("debug taps", 5e6)
        .add_channel("stats scan chain", 1e6);
    println!(
        "\nmultiplexed services on the FSB (utilization {:.1}%):",
        100.0 * mux.utilization()
    );
    for (name, achieved) in mux.achieved_bytes_per_sec() {
        println!("  {name:<20} {:.1} MB/s", achieved / 1e6);
    }
}
